"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the paper's experiments without writing code:

- ``repro table1`` / ``table2`` / ``table3`` — regenerate the paper tables;
- ``repro fig1`` — the motivating example;
- ``repro run`` — one matchup (schedulers × grid × workload), normalized;
- ``repro sweep`` — a γ or B sweep on one grid;
- ``repro grids`` — list the modelled grids and their statistics;
- ``repro campaign`` — list/run/resume/report parallel experiment campaigns
  (process-pool fan-out with content-addressed result caching);
- ``repro perf`` — engine throughput benchmark (events/s, tasks/s, select
  latency), written to ``BENCH_engine.json``;
- ``repro geo`` — geo-distributed federation: run one multi-region trial,
  compare routing policies on the identical workload, or sweep a geo
  campaign preset against the result store;
- ``repro disrupt`` — disruption & resilience: run a federation trial
  under a seeded schedule of region outages / curtailments / carbon-signal
  blackouts, compare failover on vs. off vs. undisrupted, or sweep the
  ``disrupt-sweep`` campaign preset;
- ``repro stream`` — service mode: drive an open-ended arrival stream in
  O(1) memory (``run``), re-render a saved report (``report``), or sweep a
  streaming campaign preset (``sweep``);
- ``repro obs`` — render a collected metrics snapshot (``report``) or
  build the static HTML dashboard (``dashboard``).

Cross-cutting: ``--obs`` on ``run`` / ``perf`` / ``campaign`` / ``geo`` /
``disrupt`` collects metrics + spans during the command and writes
``metrics.jsonl`` / ``trace.json`` under ``--obs-dir``; the top-level
``--log-level`` flag configures ``repro``'s stderr logging. Errors go to
stderr with a non-zero exit code.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.carbon.grids import GRID_CODES, GRID_SPECS
from repro.experiments.motivation import fig1_comparison
from repro.experiments.runner import (
    SCHEDULER_NAMES,
    ExperimentConfig,
    run_matchup,
)
from repro.experiments.tables import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    format_metric_table,
    format_table1,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.experiments.figures import cap_b_sweep, pcaps_gamma_sweep
from repro.obs.observer import (
    DEFAULT_OBS_DIR,
    LOG_LEVELS,
    METRICS_FILENAME,
    collecting,
    configure_logging,
)
from repro.simulator.metrics import compare_to_baseline
from repro.workloads.batch import WorkloadSpec


def _error(message: str) -> None:
    """CLI error line: stderr, so piped stdout output stays parseable."""
    print(message, file=sys.stderr)


def _add_common_experiment_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--grid", default="DE", choices=GRID_CODES)
    parser.add_argument("--executors", type=int, default=25)
    parser.add_argument("--jobs", type=int, default=20)
    parser.add_argument(
        "--family", default="tpch", choices=("tpch", "alibaba")
    )
    parser.add_argument("--interarrival", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--mode", default="standalone", choices=("standalone", "kubernetes")
    )


def _experiment_config(args: argparse.Namespace, **overrides) -> ExperimentConfig:
    params = dict(
        grid=args.grid,
        num_executors=args.executors,
        mode=args.mode,
        workload=WorkloadSpec(
            family=args.family,
            num_jobs=args.jobs,
            mean_interarrival=args.interarrival,
        ),
        seed=args.seed,
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def _cmd_table1(args: argparse.Namespace) -> int:
    print(format_table1(table1_rows(hours=args.hours)))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    rows = table2_rows(num_jobs=args.jobs, num_executors=args.executors)
    print(format_metric_table(rows, PAPER_TABLE2))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    rows = table3_rows(num_jobs=args.jobs, num_executors=args.executors)
    print(format_metric_table(rows, PAPER_TABLE3))
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    print(f"{'policy':<14} {'hours':>7} {'Δcarbon':>9} {'Δtime':>8}")
    for row in fig1_comparison(gamma=args.gamma):
        print(
            f"{row.policy:<14} {row.completion_hours:>7.1f} "
            f"{row.carbon_vs_fifo_pct:>+8.1f}% {row.time_vs_fifo_pct:>+7.1f}%"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = args.schedulers
    unknown = [n for n in names if n not in SCHEDULER_NAMES]
    if unknown:
        _error(f"unknown schedulers: {unknown}; choose from {SCHEDULER_NAMES}")
        return 2
    baseline = args.baseline or names[0]
    if baseline not in names:
        names = [baseline] + names
    config = _experiment_config(args, gamma=args.gamma)
    results = run_matchup(names, config)
    base = results[baseline]
    print(f"{'scheduler':<20} {'carbon_red%':>12} {'ECT':>8} {'JCT':>8}")
    for name, result in results.items():
        m = compare_to_baseline(result, base)
        print(
            f"{name:<20} {m.carbon_reduction_pct:>11.1f}% "
            f"{m.ect_ratio:>8.3f} {m.jct_ratio:>8.3f}"
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    if args.knob == "gamma":
        points = pcaps_gamma_sweep(
            gammas=tuple(args.values or (0.1, 0.3, 0.5, 0.7, 0.9)),
            baseline=args.baseline or "decima",
            config=config,
        )
        label = "gamma"
    else:
        quotas = tuple(
            int(v) for v in (args.values or (2, 4, 8, 12, 16))
        )
        points = cap_b_sweep(
            quotas=quotas,
            underlying=args.baseline or "decima",
            config=config,
        )
        label = "B"
    print(f"{label:>7} {'carbon_red%':>12} {'ECT':>8} {'JCT':>8}")
    for p in points:
        print(
            f"{p.parameter:>7.2f} {p.carbon_reduction_pct:>11.1f}% "
            f"{p.ect_ratio:>8.3f} {p.jct_ratio:>8.3f}"
        )
    return 0


DEFAULT_CAMPAIGN_STORE = "campaign-results.jsonl"

#: Mirrors ``repro.geo.routing.ROUTING_POLICY_NAMES`` as a literal so
#: build_parser never imports the geo subsystem (handlers import lazily);
#: a test pins the two tuples equal.
GEO_ROUTING_CHOICES = (
    "round-robin",
    "queue-aware",
    "carbon-greedy",
    "carbon-forecast",
)


def _campaign_spec(args: argparse.Namespace):
    from repro.campaign import campaign_presets

    presets = campaign_presets()
    if args.name not in presets:
        _error(f"unknown campaign {args.name!r}; choose from {sorted(presets)}")
        return None
    spec = presets[args.name]
    jobs = getattr(args, "jobs", None)
    executors = getattr(args, "executors", None)
    if jobs is not None or executors is not None:
        spec = spec.scaled(num_jobs=jobs, num_executors=executors)
    return spec


def _print_campaign_report(runner, spec) -> None:
    from repro.campaign import campaign_report, format_campaign_report

    records = runner.collect(spec)
    expected = len(runner.keyed_trials(spec))
    rows = campaign_report(records, baseline=spec.baseline)
    title = (
        f"campaign {spec.name!r} — {len(records)}/{expected} trials in store, "
        f"baseline {spec.baseline or '(absolute metrics)'}"
    )
    print(format_campaign_report(rows, title=title))
    _print_trial_health(records)


def _print_trial_health(records) -> None:
    """Surface failed and flaky trials under a report (attempt counts and
    last-failure summaries), so retries are visible rather than averaged
    over."""
    failed = [r for r in records if not r.ok]
    flaky = [r for r in records if r.ok and r.attempts > 1]
    for record in failed:
        print(
            f"  FAILED {record.key[:12]} after {record.attempts} attempt(s): "
            f"{record.error}"
        )
    for record in flaky:
        last = (record.attempt_errors or ["?"])[-1]
        print(
            f"  flaky  {record.key[:12]}: ok on attempt {record.attempts} "
            f"(last failure: {last})"
        )


def _cmd_campaign_list(args: argparse.Namespace) -> int:
    from repro.campaign import campaign_presets

    print(f"{'campaign':<12} {'trials':>6}  {'axes':<42} description")
    for name, spec in campaign_presets().items():
        print(
            f"{name:<12} {len(spec.trials()):>6}  {spec.axis_summary():<42} "
            f"{spec.description}"
        )
    return 0


def _supervisor_from_args(args: argparse.Namespace):
    from repro.campaign import SupervisorConfig

    return SupervisorConfig(
        trial_timeout_s=getattr(args, "trial_timeout", None),
        max_attempts=getattr(args, "max_attempts", 2),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        checkpoint_every_events=getattr(args, "checkpoint_every", 200),
    )


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignInterrupted, CampaignRunner, ResultStore

    spec = _campaign_spec(args)
    if spec is None:
        return 2
    resume = not getattr(args, "no_resume", False)
    if args.cmd == "resume" and not ResultStore(args.store).path.exists():
        _error(f"nothing to resume: store {args.store!r} does not exist")
        return 2
    exporter = None
    if getattr(args, "export_jsonl", None):
        from repro.obs.export import JsonlExporter

        exporter = JsonlExporter(args.export_jsonl)
    runner = CampaignRunner(
        ResultStore(args.store),
        workers=args.workers,
        supervisor=_supervisor_from_args(args),
        exporter=exporter,
        batch_replicates=getattr(args, "batch_replicates", 1),
    )
    print(
        f"campaign {spec.name!r}: {len(runner.keyed_trials(spec))} trials "
        f"({spec.axis_summary()}), store {args.store}"
    )

    def progress(done: int, total: int, line: str) -> None:
        if not args.quiet:
            print(f"[{done:>3}/{total}] {line}")

    try:
        run = runner.run(spec, resume=resume, on_progress=progress)
    except CampaignInterrupted as interrupted:
        # Completed futures were drained into the store before this
        # propagated, so `repro campaign resume` continues from here.
        print(f"interrupted: {interrupted}")
        return 130
    stats = run.stats
    print(
        f"done in {run.wall_time_s:.1f}s: {stats.misses} simulated, "
        f"{stats.hits} cached (cache hit rate {stats.hit_rate:.1%}), "
        f"{len(run.failures)} failed"
    )
    for record in run.failures:
        print(
            f"  FAILED {record.key} after {record.attempts} attempt(s): "
            f"{record.error}"
        )
    _print_campaign_report(runner, spec)
    return 1 if run.failures else 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignRunner, ResultStore

    spec = _campaign_spec(args)
    if spec is None:
        return 2
    store = ResultStore(args.store)
    if not store.path.exists():
        _error(f"store {args.store!r} does not exist; run the campaign first")
        return 2
    _print_campaign_report(CampaignRunner(store), spec)
    return 0


def _cmd_campaign_verify(args: argparse.Namespace) -> int:
    from repro.campaign import ResultStore

    store = ResultStore(args.store)
    if not store.path.exists():
        _error(f"store {args.store!r} does not exist")
        return 2
    if args.repair:
        check = store.repair()
        print(check.summary())
        if not check.clean:
            print(
                f"repaired: kept {check.valid_records} valid line(s), "
                f"dropped {len(check.corrupt_lines)} corrupt "
                f"(original saved as {store.path.name}.bak)"
            )
        return 0
    check = store.verify()
    print(check.summary())
    if not check.clean:
        print(
            f"corrupt line number(s): "
            f"{', '.join(str(n) for n in check.corrupt_lines)} "
            f"— run with --repair to rewrite a clean store"
        )
    return 0 if check.clean else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    handlers = {
        "list": _cmd_campaign_list,
        "run": _cmd_campaign_run,
        "resume": _cmd_campaign_run,
        "report": _cmd_campaign_report,
        "verify": _cmd_campaign_verify,
    }
    return handlers[args.cmd](args)


def _cmd_faults(args: argparse.Namespace) -> int:
    """``repro faults demo``: run a tiny campaign while seeded crashes,
    hangs, and torn store writes fire, then verify/repair/resume."""
    import tempfile
    from pathlib import Path

    from repro import faults
    from repro.campaign import (
        CampaignRunner,
        CampaignSpec,
        ResultStore,
        SupervisorConfig,
    )
    from repro.experiments.runner import ExperimentConfig
    from repro.obs.observer import collecting
    from repro.workloads.batch import WorkloadSpec

    base = ExperimentConfig(
        scheduler="fifo",
        num_executors=4,
        workload=WorkloadSpec(num_jobs=4),
        trace_hours=24,
    )
    spec = CampaignSpec(
        "faults-demo",
        base,
        axes={"scheduler": ("fifo", "pcaps")},
        description="fault-injection demo",
    )
    supervisor = SupervisorConfig(
        trial_timeout_s=2.0, max_attempts=4, backoff_base_s=0.05
    )
    workdir = Path(args.store).parent if args.store else Path(tempfile.mkdtemp())
    store_path = Path(args.store) if args.store else workdir / "faults-demo.jsonl"

    counters = (
        "campaign.retries",
        "campaign.timeouts",
        "campaign.quarantines",
        "campaign.pool_rebuilds",
        "store.corrupt_lines_skipped",
    )
    plan = faults.FaultPlan(
        seed=args.seed,
        rules=(
            # Every trial's first attempt crashes its worker; second
            # attempts hang past the 2s timeout; third attempts run clean.
            faults.FaultRule(kind="crash", occasions=(1,)),
            faults.FaultRule(kind="hang", occasions=(2,), hang_s=30.0),
            # The first append of every key tears mid-line.
            faults.FaultRule(kind="torn-write", occasions=(1,)),
        ),
    )
    print(f"fault plan (seed {args.seed}): crash@1, hang@2, torn-write@1")
    print(f"store: {store_path}")

    print("\n[1/4] supervised run under injection (workers=2)")
    with collecting("faults-demo") as observer:
        with faults.injecting(plan), faults.torn_store_writes():
            runner = CampaignRunner(
                ResultStore(store_path), workers=2, supervisor=supervisor
            )
            run = runner.run(
                spec,
                on_progress=lambda d, t, line: print(f"  [{d}/{t}] {line}"),
            )
        print(f"  run completed: {len(run.records)} record(s), "
              f"{len(run.failures)} quarantined")
        store = ResultStore(store_path)
        store.records()  # count corrupt lines into the obs counter
        for name in counters:
            try:
                value = observer.registry.value(name)
            except KeyError:  # counter never fired this run
                value = 0
            print(f"  {name} = {value}")

    print("\n[2/4] verify (torn lines expected)")
    check = store.verify()
    print(f"  {check.summary()}")

    print("\n[3/4] repair (original kept as .bak)")
    print(f"  {store.repair().summary()}")

    print("\n[4/4] resume with injection off — torn trials re-run")
    runner = CampaignRunner(ResultStore(store_path), workers=0, supervisor=supervisor)
    resumed = runner.run(
        spec, on_progress=lambda d, t, line: print(f"  [{d}/{t}] {line}")
    )
    final = store.verify()
    print(f"  {final.summary()}")
    healthy = final.clean and not resumed.failures
    print(f"\ndemo {'ok' if healthy else 'FAILED'}: every recovery path exercised")
    return 0 if healthy else 1


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.experiments.perf import (
        build_scenarios,
        format_report,
        measure_batched_speedup,
        measure_campaign_throughput,
        run_scenario,
        smoke_scenarios,
        write_report,
    )

    if args.smoke:
        scenarios = smoke_scenarios()
    else:
        scenarios = build_scenarios(
            schedulers=tuple(args.schedulers),
            job_counts=tuple(args.jobs),
            num_executors=args.executors,
        )
    measurements = []
    for scenario in scenarios:
        if not args.quiet:
            print(f"running {scenario.name} ...", flush=True)
        measurements.append(run_scenario(scenario, collect_cache_stats=True))
    campaign = None
    if not args.no_campaign:
        if not args.quiet:
            print("running campaign-throughput (smoke preset) ...", flush=True)
        campaign = measure_campaign_throughput()
    batched = None
    if args.batch_replicates > 1:
        # Smoke mode keeps the paired measurement seconds-scale.
        num_jobs = 50 if args.smoke else 200
        if not args.quiet:
            print(
                f"running batched-replicate pairing (pcaps-{num_jobs} x "
                f"{args.batch_replicates}) ...",
                flush=True,
            )
        batched = measure_batched_speedup(
            num_jobs=num_jobs, replicates=args.batch_replicates
        )
    print(format_report(measurements))
    if campaign is not None:
        print(
            f"campaign throughput: {campaign['trials_per_min']:.1f} "
            f"trials/min ({campaign['trials']} trials in "
            f"{campaign['wall_s']:.1f}s, preset {campaign['preset']!r})"
        )
    if batched is not None:
        print(
            f"batched replicates ({batched['scenario']}): "
            f"{batched['batched_trials_per_min']:.1f} trials/min batched "
            f"vs {batched['sequential_trials_per_min']:.1f} sequential "
            f"({batched['speedup']:.2f}x, target "
            f"{batched['target_speedup']}x)"
        )
    write_report(
        measurements,
        args.output,
        campaign_throughput=campaign,
        batched_replicates=batched,
    )
    print(f"wrote {args.output}")
    return 0


def _geo_config(args: argparse.Namespace):
    from repro.geo import FederationConfig, RegionConfig

    grids = [g.strip().upper() for g in args.regions.split(",") if g.strip()]
    unknown = [g for g in grids if g not in GRID_CODES]
    if unknown:
        _error(f"unknown grids: {unknown}; choose from {GRID_CODES}")
        return None
    origin = args.origin.strip().lower() if args.origin else None
    member_names = [g.lower() for g in grids]
    if origin is not None and origin not in member_names:
        _error(f"unknown origin region {args.origin!r}; "
               f"choose from {member_names}")
        return None
    try:
        regions = tuple(
            RegionConfig(
                name=grid.lower(),
                grid=grid,
                scheduler=args.scheduler,
                num_executors=args.executors,
            )
            for grid in grids
        )
        return FederationConfig(
            regions=regions,
            # `compare` runs every policy and has no --routing flag.
            routing=getattr(args, "routing", "round-robin"),
            workload=WorkloadSpec(
                family=args.family,
                num_jobs=args.jobs,
                mean_interarrival=args.interarrival,
            ),
            seed=args.seed,
            origin_region=origin,
        )
    except ValueError as exc:  # e.g. duplicate or empty --regions
        _error(f"invalid federation: {exc}")
        return None


def _print_federation(result) -> None:
    print(f"routing {result.routing!r}: {result.num_jobs} jobs, "
          f"{result.moved_jobs()} moved cross-region")
    print(f"  {'region':<8} {'grid':<6} {'jobs':>5} {'carbon_g':>10} {'ECT':>9}")
    for name, grid, jobs, carbon_g, ect in result.region_rows():
        print(f"  {name:<8} {grid:<6} {jobs:>5} {carbon_g:>10.1f} {ect:>9.1f}")
    print(
        f"  total {result.total_carbon_g:.1f} g "
        f"(compute {result.compute_carbon_g:.1f} + "
        f"transfer {result.transfer_carbon_g:.1f}), "
        f"ECT {result.ect:.1f}s, avg JCT {result.avg_jct:.1f}s, "
        f"avg stretch {result.avg_stretch:.2f}"
    )


def _cmd_geo_run(args: argparse.Namespace) -> int:
    from repro.geo import run_federation

    config = _geo_config(args)
    if config is None:
        return 2
    _print_federation(run_federation(config))
    return 0


def _cmd_geo_compare(args: argparse.Namespace) -> int:
    from repro.experiments.federation import run_routing_matchup
    from repro.geo import ROUTING_POLICY_NAMES, compare_federations

    config = _geo_config(args)
    if config is None:
        return 2
    results = run_routing_matchup(config, ROUTING_POLICY_NAMES)
    base = results[args.baseline]
    print(
        f"{'routing':<18} {'carbon_g':>10} {'carbon_red%':>12} "
        f"{'ECT':>8} {'JCT':>8} {'stretch':>8} {'moved':>6}"
    )
    for name, result in results.items():
        m = compare_federations(result, base)
        print(
            f"{name:<18} {result.total_carbon_g:>10.1f} "
            f"{m.carbon_reduction_pct:>11.1f}% {m.ect_ratio:>8.3f} "
            f"{m.jct_ratio:>8.3f} {m.stretch_ratio:>8.3f} "
            f"{result.moved_jobs():>6}"
        )
    return 0


def _cmd_geo_sweep(args: argparse.Namespace) -> int:
    from repro.campaign import (
        ResultStore,
        format_geo_report,
        geo_campaign_report,
        geo_presets,
        run_geo_campaign,
    )

    presets = geo_presets()
    if args.name not in presets:
        _error(f"unknown geo campaign {args.name!r}; choose from {sorted(presets)}")
        return 2
    spec = presets[args.name]
    store = ResultStore(args.store)
    print(
        f"geo campaign {spec.name!r}: {len(spec.trials())} trials "
        f"({spec.axis_summary()}), store {args.store}"
    )

    def progress(done: int, total: int, line: str) -> None:
        if not args.quiet:
            print(f"[{done:>3}/{total}] {line}")

    run = run_geo_campaign(
        spec, store, on_progress=progress, workers=args.workers
    )
    stats = run.stats
    print(
        f"done in {run.wall_time_s:.1f}s: {stats.misses} simulated, "
        f"{stats.hits} cached, {len(run.failures)} failed"
    )
    for record in run.failures:
        print(f"  FAILED {record.key}: {record.error}")
    rows = geo_campaign_report(run.records, baseline=spec.baseline)
    print(format_geo_report(rows, title=f"geo campaign {spec.name!r}"))
    return 1 if run.failures else 0


def _cmd_geo(args: argparse.Namespace) -> int:
    handlers = {
        "run": _cmd_geo_run,
        "compare": _cmd_geo_compare,
        "sweep": _cmd_geo_sweep,
    }
    return handlers[args.cmd](args)


def _disrupt_schedule(args: argparse.Namespace, config):
    from repro.disrupt import DisruptionSchedule

    return DisruptionSchedule.generate(
        seed=args.disrupt_seed,
        regions=config.region_names(),
        horizon_s=args.horizon,
        num_outages=args.outages,
        mean_outage_s=args.outage_seconds,
        num_curtailments=args.curtailments,
        num_blackouts=args.blackouts,
    )


def _cmd_disrupt_run(args: argparse.Namespace) -> int:
    from repro.disrupt import federation_disruption_report
    from repro.geo import run_federation

    config = _geo_config(args)
    if config is None:
        return 2
    schedule = _disrupt_schedule(args, config)
    if not schedule:
        _error("generated schedule is empty; raise --outages/--curtailments")
        return 2
    result = run_federation(
        config.with_disruptions(
            schedule, failover=not args.no_failover,
            migrate=not args.no_migrate,
        )
    )
    print(f"{len(schedule)} disruption events:")
    for event in schedule.events:
        extra = (
            f" keep={event.capacity_fraction:.0%}"
            if event.kind == "curtailment"
            else ""
        )
        print(
            f"  {event.kind:<16} {event.region:<8} "
            f"[{event.start:>7.1f}, {event.end:>7.1f}){extra}"
        )
    _print_federation(result)
    report = federation_disruption_report(result, schedule)
    print(
        f"  resilience: {report.preempted_tasks} preempted "
        f"({report.wasted_executor_s:.1f} exec-s wasted, "
        f"goodput {report.goodput:.3f}), "
        f"{report.rerouted_jobs} rerouted, {report.migrated_jobs} migrated "
        f"(+{report.failover_transfer_g:.1f} g transfer), "
        f"mean recovery {report.mean_recovery_latency_s:.1f}s"
    )
    return 0


def _cmd_disrupt_compare(args: argparse.Namespace) -> int:
    from repro.experiments.disrupt import (
        disruption_matchup_reports,
        format_disruption_matchup,
        matchup_deadline,
        run_disruption_matchup,
    )

    config = _geo_config(args)
    if config is None:
        return 2
    schedule = _disrupt_schedule(args, config)
    if not schedule:
        _error("generated schedule is empty; raise --outages/--curtailments")
        return 2
    results = run_disruption_matchup(config, schedule)
    reports = disruption_matchup_reports(results, schedule)
    deadline = matchup_deadline(results)
    print(
        f"{len(schedule)} disruption events, on-time deadline "
        f"{deadline:.1f}s (1.25x undisrupted ECT)"
    )
    print(format_disruption_matchup(results, reports, deadline))
    return 0


def _cmd_disrupt_sweep(args: argparse.Namespace) -> int:
    args.name = "disrupt-sweep"
    return _cmd_geo_sweep(args)


def _cmd_disrupt(args: argparse.Namespace) -> int:
    handlers = {
        "run": _cmd_disrupt_run,
        "compare": _cmd_disrupt_compare,
        "sweep": _cmd_disrupt_sweep,
    }
    return handlers[args.cmd](args)


def _cmd_stream_run(args: argparse.Namespace) -> int:
    from repro.obs.export import HttpExporter, JsonlExporter
    from repro.obs.slo import ALERTS_FILENAME, SloRule
    from repro.stream import (
        ServiceConfig,
        ServiceRunner,
        format_stream_report,
    )
    from repro.workloads.stream import StreamSpec

    if args.jobs is None and args.horizon is None:
        _error("bound the run with --jobs and/or --horizon")
        return 2
    slo_rules = []
    for text in args.slo or []:
        try:
            slo_rules.append(SloRule.parse(text))
        except ValueError as exc:
            _error(str(exc))
            return 2
    experiment = ExperimentConfig(
        scheduler=args.scheduler,
        grid=args.grid,
        num_executors=args.executors,
        gamma=args.gamma,
        seed=args.seed,
    )
    stream = StreamSpec(
        family=args.family,
        mean_interarrival=args.interarrival,
        tpch_scales=tuple(args.scales),
        seed=args.seed,
        max_jobs=args.jobs,
        horizon_s=args.horizon,
        gc_policy=args.gc_policy,
    )
    config = ServiceConfig(
        experiment=experiment,
        stream=stream,
        window_s=args.window,
        epoch_events=args.epoch_events,
        checkpoint_every_epochs=(
            args.checkpoint_every if args.checkpoint_dir else 0
        ),
        checkpoint_dir=args.checkpoint_dir,
    )

    def progress(runner: ServiceRunner) -> None:
        if not args.quiet:
            print(
                f"[epoch {runner.epochs:>4}] "
                f"arrived={runner.aggregator.jobs_arrived} "
                f"done={runner.aggregator.jobs_completed} "
                f"active={runner.jobs_active}",
                file=sys.stderr,
            )

    exporters = []
    if args.export_jsonl:
        exporters.append(JsonlExporter(args.export_jsonl))
    if args.export_port is not None:
        endpoint = HttpExporter(port=args.export_port)
        exporters.append(endpoint)
        print(f"exposition endpoint: {endpoint.url}", file=sys.stderr)

    runner = ServiceRunner(
        config,
        on_epoch=progress,
        exporters=exporters,
        slo_rules=slo_rules,
        slo_action=args.slo_action,
    )
    try:
        report = runner.run(max_epochs=args.max_epochs)
    finally:
        runner.close_exporters()
    print(format_stream_report(report))
    if runner.slo is not None:
        alerts_path = args.alerts_output or os.path.join(
            args.obs_dir, ALERTS_FILENAME
        )
        runner.slo.write_alerts(
            alerts_path,
            meta={"label": "stream run", "scheduler": args.scheduler},
        )
        print(
            f"slo: {len(runner.slo.alerts)} alert transition(s), "
            f"wrote {alerts_path}",
            file=sys.stderr,
        )
    if args.export_jsonl:
        print(f"export: wrote {args.export_jsonl}", file=sys.stderr)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.output}")
    return 0


def _cmd_stream_report(args: argparse.Namespace) -> int:
    from repro.stream import StreamReport, format_stream_report

    if not os.path.exists(args.input):
        _error(
            f"no stream report at {args.input!r}; run "
            "'repro stream run --output <path>' first"
        )
        return 2
    with open(args.input, encoding="utf-8") as fh:
        report = StreamReport.from_dict(json.load(fh))
    print(format_stream_report(report))
    return 0


def _cmd_stream_sweep(args: argparse.Namespace) -> int:
    from repro.campaign import ResultStore
    from repro.campaign.stream import (
        format_stream_campaign_report,
        run_stream_campaign,
        stream_campaign_report,
        stream_presets,
    )

    presets = stream_presets()
    if args.name not in presets:
        _error(
            f"unknown stream campaign {args.name!r}; "
            f"choose from {sorted(presets)}"
        )
        return 2
    spec = presets[args.name]
    store = ResultStore(args.store)
    print(
        f"stream campaign {spec.name!r}: {len(spec.trials())} trials "
        f"({spec.axis_summary()}), store {args.store}"
    )

    def progress(done: int, total: int, line: str) -> None:
        if not args.quiet:
            print(f"[{done:>3}/{total}] {line}")

    run = run_stream_campaign(
        spec, store, on_progress=progress, workers=args.workers
    )
    stats = run.stats
    print(
        f"done in {run.wall_time_s:.1f}s: {stats.misses} simulated, "
        f"{stats.hits} cached, {len(run.failures)} failed"
    )
    for record in run.failures:
        print(f"  FAILED {record.key}: {record.error}")
    rows = stream_campaign_report(run.records)
    print(
        format_stream_campaign_report(
            rows, title=f"stream campaign {spec.name!r}"
        )
    )
    return 1 if run.failures else 0


def _cmd_stream(args: argparse.Namespace) -> int:
    handlers = {
        "run": _cmd_stream_run,
        "report": _cmd_stream_report,
        "sweep": _cmd_stream_sweep,
    }
    return handlers[args.cmd](args)


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs.report import render_report

    metrics = args.metrics
    if os.path.isdir(metrics):
        # Directory given: resolve the conventional snapshot inside it.
        metrics = os.path.join(metrics, METRICS_FILENAME)
    if not os.path.exists(metrics):
        _error(
            f"no metrics snapshot at {metrics!r}; run a command with --obs "
            f"first (writes <obs-dir>/{METRICS_FILENAME})"
        )
        return 2
    try:
        rendered = render_report(metrics)
    except (OSError, ValueError, KeyError) as exc:
        _error(f"unreadable metrics snapshot {metrics!r}: {exc}")
        return 2
    print(rendered)
    return 0


def _cmd_obs_dashboard(args: argparse.Namespace) -> int:
    from repro.obs.dashboard import build_dashboard

    # Inputs the user *named* must exist — a typo'd path silently rendering
    # an empty panel is worse than an error. Discovered defaults (no flag
    # given) stay tolerant: absence just means nothing to show yet.
    for directory in args.obs_dir or []:
        if not os.path.exists(os.path.join(directory, METRICS_FILENAME)):
            _error(
                f"obs dir {directory!r} has no {METRICS_FILENAME}; run a "
                "command with --obs first"
            )
            return 2
    if args.history_dir is not None:
        if not os.path.isdir(args.history_dir):
            _error(f"history dir {args.history_dir!r} does not exist")
            return 2
        if not any(
            entry.is_dir() for entry in os.scandir(args.history_dir)
        ):
            _error(
                f"history dir {args.history_dir!r} is empty — expected one "
                "subdirectory per recorded run, each holding BENCH_*.json"
            )
            return 2
    path = build_dashboard(
        output=args.output,
        bench_paths=args.bench,
        store_paths=args.store,
        obs_dirs=args.obs_dir,
        history_dir=args.history_dir,
    )
    print(f"wrote {path}")
    return 0


def _cmd_obs_regress(args: argparse.Namespace) -> int:
    from repro.obs.regress import check_history, format_regression_report

    if not os.path.isdir(args.history_dir):
        _error(
            f"history dir {args.history_dir!r} does not exist; point "
            "--history-dir at the per-run snapshot directory CI accumulates"
        )
        return 2
    report = check_history(
        args.history_dir,
        window=args.window,
        tolerance=args.tolerance,
        min_points=args.min_points,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_regression_report(report))
    return 0 if report.ok else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    handlers = {
        "report": _cmd_obs_report,
        "dashboard": _cmd_obs_dashboard,
        "regress": _cmd_obs_regress,
    }
    return handlers[args.cmd](args)


def _cmd_grids(args: argparse.Namespace) -> int:
    print(f"{'grid':<7} {'description':<55} {'mean':>6} {'cov':>6}")
    for code in GRID_CODES:
        spec = GRID_SPECS[code]
        print(
            f"{code:<7} {spec.description:<55} {spec.mean:>6.0f} "
            f"{spec.coeff_var:>6.3f}"
        )
    return 0


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--obs", action="store_true",
        help="collect metrics + spans during this command "
        "(fingerprint-neutral; see docs/observability.md)",
    )
    parser.add_argument(
        "--obs-dir", default=DEFAULT_OBS_DIR,
        help="directory for metrics.jsonl / trace.json (with --obs)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction CLI for 'Carbon- and Precedence-Aware "
        "Scheduling for Data Processing Clusters' (SIGCOMM 2025)",
    )
    parser.add_argument(
        "--log-level", default=None, choices=LOG_LEVELS,
        help="configure 'repro' stderr logging for this invocation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="Table 1: grid trace statistics")
    p.add_argument("--hours", type=int, default=26_304)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("table2", help="Table 2: prototype-mode top line")
    p.add_argument("--jobs", type=int, default=25)
    p.add_argument("--executors", type=int, default=40)
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("table3", help="Table 3: simulator-mode top line")
    p.add_argument("--jobs", type=int, default=25)
    p.add_argument("--executors", type=int, default=40)
    p.set_defaults(func=_cmd_table3)

    p = sub.add_parser("fig1", help="Figure 1: motivating example")
    p.add_argument("--gamma", type=float, default=0.5)
    p.set_defaults(func=_cmd_fig1)

    p = sub.add_parser("run", help="run a scheduler matchup")
    _add_common_experiment_args(p)
    p.add_argument(
        "schedulers", nargs="+", metavar="SCHEDULER",
        help=f"one or more of {', '.join(SCHEDULER_NAMES)}",
    )
    p.add_argument("--baseline", default=None)
    p.add_argument("--gamma", type=float, default=0.5)
    _add_obs_args(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("sweep", help="sweep PCAPS gamma or CAP B")
    _add_common_experiment_args(p)
    p.add_argument("knob", choices=("gamma", "B"))
    p.add_argument(
        "--values", type=float, nargs="+", default=None,
        help="knob values (gammas, or integer quotas for B)",
    )
    p.add_argument("--baseline", default=None)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("grids", help="list the modelled power grids")
    p.set_defaults(func=_cmd_grids)

    p = sub.add_parser(
        "perf",
        help="engine throughput benchmark (events/s, tasks/s, select latency)",
    )
    p.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale CI grid instead of the full scheduler sweep",
    )
    p.add_argument(
        "--output", default="BENCH_engine.json",
        help="where to write the measurement JSON",
    )
    p.add_argument(
        "--schedulers", nargs="+", default=["fifo", "decima", "pcaps"],
        help="schedulers to time (full mode only)",
    )
    p.add_argument(
        "--jobs", type=int, nargs="+", default=[50, 100, 200],
        help="batch sizes to time (full mode only)",
    )
    p.add_argument("--executors", type=int, default=50)
    p.add_argument(
        "--no-campaign", action="store_true",
        help="skip the campaign-throughput (trials/min) measurement",
    )
    p.add_argument(
        "--batch-replicates", type=int, default=0, metavar="N",
        help="also measure batched-vs-sequential replicate throughput "
        "at width N (paired best-of-rounds on pcaps; 0 = skip)",
    )
    p.add_argument("--quiet", action="store_true")
    _add_obs_args(p)
    p.set_defaults(func=_cmd_perf)

    p = sub.add_parser(
        "campaign",
        help="parallel experiment campaigns with cached, resumable results",
    )
    campaign_sub = p.add_subparsers(dest="cmd", required=True)

    c = campaign_sub.add_parser("list", help="list the named campaign presets")
    c.set_defaults(func=_cmd_campaign)

    def _add_campaign_target(c: argparse.ArgumentParser, with_exec: bool) -> None:
        c.add_argument("name", help="campaign preset name (see 'campaign list')")
        c.add_argument(
            "--store", default=DEFAULT_CAMPAIGN_STORE,
            help="JSONL result store path",
        )
        c.add_argument(
            "--jobs", type=int, default=None,
            help="override the base workload's batch size",
        )
        c.add_argument(
            "--executors", type=int, default=None,
            help="override the base cluster size",
        )
        if with_exec:
            c.add_argument(
                "--workers", type=int, default=None,
                help="process-pool size (default: CPU count; 0/1 = inline)",
            )
            c.add_argument(
                "--batch-replicates", type=int, default=1, metavar="N",
                help="advance up to N replicate trials (same config, "
                "different seed/trace offset) together through one "
                "batched stepper per pool task; records stay "
                "per-replicate and bit-identical (default: 1 = off)",
            )
            c.add_argument(
                "--quiet", action="store_true", help="suppress per-trial lines"
            )
            c.add_argument(
                "--trial-timeout", type=float, default=None, metavar="SECONDS",
                help="per-attempt wall-clock budget; a worker past it is "
                "presumed hung and the trial is retried (default: none)",
            )
            c.add_argument(
                "--max-attempts", type=int, default=2,
                help="attempt budget per trial before quarantine (default: 2)",
            )
            c.add_argument(
                "--checkpoint-dir", default=None, metavar="DIR",
                help="checkpoint trials mid-flight into DIR so retries "
                "resume instead of restarting (default: off)",
            )
            c.add_argument(
                "--checkpoint-every", type=int, default=200, metavar="EVENTS",
                help="engine events between checkpoints (default: 200)",
            )
            c.add_argument(
                "--export-jsonl", default=None, metavar="PATH",
                help="append one metrics sample per completed trial to "
                "PATH (live campaign progress as a JSONL time series)",
            )
            _add_obs_args(c)

    c = campaign_sub.add_parser(
        "run", help="run a campaign (skips trials already in the store)"
    )
    _add_campaign_target(c, with_exec=True)
    c.add_argument(
        "--no-resume", action="store_true",
        help="re-run every trial even if the store already has it",
    )
    c.set_defaults(func=_cmd_campaign)

    c = campaign_sub.add_parser(
        "resume", help="continue an interrupted campaign from its store"
    )
    _add_campaign_target(c, with_exec=True)
    c.set_defaults(func=_cmd_campaign)

    c = campaign_sub.add_parser(
        "report", help="aggregate a campaign's table from the store alone"
    )
    _add_campaign_target(c, with_exec=False)
    c.set_defaults(func=_cmd_campaign)

    c = campaign_sub.add_parser(
        "verify",
        help="check a result store for torn/corrupt lines; --repair "
        "rewrites a clean store keeping a .bak",
    )
    c.add_argument(
        "--store", default=DEFAULT_CAMPAIGN_STORE,
        help="JSONL result store path",
    )
    c.add_argument(
        "--repair", action="store_true",
        help="rewrite the store without its corrupt lines "
        "(original saved alongside as .bak)",
    )
    c.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "faults",
        help="deterministic fault injection: chaos-test the campaign "
        "resilience layer",
    )
    faults_sub = p.add_subparsers(dest="cmd", required=True)
    f = faults_sub.add_parser(
        "demo",
        help="run a tiny campaign under seeded crashes, hangs, and torn "
        "store writes, then verify/repair/resume",
    )
    f.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    f.add_argument(
        "--store", default=None,
        help="store path for the demo (default: a temp directory)",
    )
    f.set_defaults(func=_cmd_faults)

    p = sub.add_parser(
        "geo",
        help="geo-distributed federation: multi-region carbon-aware routing",
    )
    geo_sub = p.add_subparsers(dest="cmd", required=True)

    def _add_geo_federation_args(
        g: argparse.ArgumentParser, with_routing: bool = True
    ) -> None:
        g.add_argument(
            "--regions", default=",".join(GRID_CODES),
            help="comma-separated grid codes, one region per grid",
        )
        if with_routing:
            g.add_argument(
                "--routing", default="carbon-forecast",
                choices=GEO_ROUTING_CHOICES,
            )
        g.add_argument(
            "--scheduler", default="pcaps", choices=SCHEDULER_NAMES,
            help="intra-cluster scheduler used by every region",
        )
        g.add_argument("--executors", type=int, default=10,
                       help="executors per region")
        g.add_argument("--jobs", type=int, default=18)
        g.add_argument("--family", default="tpch", choices=("tpch", "alibaba"))
        g.add_argument("--interarrival", type=float, default=20.0)
        g.add_argument("--seed", type=int, default=0)
        g.add_argument(
            "--origin", default=None,
            help="pin every job's origin region (default: seeded uniform)",
        )
        _add_obs_args(g)

    g = geo_sub.add_parser("run", help="run one federation trial")
    _add_geo_federation_args(g)
    g.set_defaults(func=_cmd_geo)

    g = geo_sub.add_parser(
        "compare",
        help="all routing policies on the identical workload, normalized",
    )
    _add_geo_federation_args(g, with_routing=False)
    g.add_argument(
        "--baseline", default="round-robin", choices=GEO_ROUTING_CHOICES
    )
    g.set_defaults(func=_cmd_geo)

    g = geo_sub.add_parser(
        "sweep", help="run a geo campaign preset against the result store"
    )
    g.add_argument("name", help="geo campaign preset (geo-smoke, geo-sweep, ...)")
    g.add_argument("--store", default=DEFAULT_CAMPAIGN_STORE)
    g.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: CPU count; 0/1 = inline)",
    )
    g.add_argument("--quiet", action="store_true")
    _add_obs_args(g)
    g.set_defaults(func=_cmd_geo)

    p = sub.add_parser(
        "disrupt",
        help="disruption & resilience: outages, curtailment, failover routing",
    )
    disrupt_sub = p.add_subparsers(dest="cmd", required=True)

    def _add_disruption_args(d: argparse.ArgumentParser) -> None:
        d.add_argument(
            "--disrupt-seed", type=int, default=7,
            help="seed for the generated disruption schedule",
        )
        d.add_argument(
            "--horizon", type=float, default=900.0,
            help="window (simulated s) disruption starts are drawn from",
        )
        d.add_argument("--outages", type=int, default=2)
        d.add_argument(
            "--outage-seconds", type=float, default=600.0,
            help="mean outage duration (exponential)",
        )
        d.add_argument("--curtailments", type=int, default=1)
        d.add_argument("--blackouts", type=int, default=1)

    d = disrupt_sub.add_parser(
        "run", help="one disrupted federation trial, with resilience report"
    )
    _add_geo_federation_args(d)
    _add_disruption_args(d)
    d.add_argument(
        "--no-failover", action="store_true",
        help="do not route around down regions",
    )
    d.add_argument(
        "--no-migrate", action="store_true",
        help="do not relocate queued jobs at outages",
    )
    d.set_defaults(func=_cmd_disrupt)

    d = disrupt_sub.add_parser(
        "compare",
        help="undisrupted vs no-failover vs failover on the identical trial",
    )
    _add_geo_federation_args(d)
    _add_disruption_args(d)
    d.set_defaults(func=_cmd_disrupt)

    d = disrupt_sub.add_parser(
        "sweep",
        help="run the disrupt-sweep campaign preset against the result store",
    )
    d.add_argument("--store", default=DEFAULT_CAMPAIGN_STORE)
    d.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: CPU count; 0/1 = inline)",
    )
    d.add_argument("--quiet", action="store_true")
    _add_obs_args(d)
    d.set_defaults(func=_cmd_disrupt)

    p = sub.add_parser(
        "stream",
        help="service mode: open-ended arrival streams in O(1) memory",
    )
    stream_sub = p.add_subparsers(dest="cmd", required=True)

    s = stream_sub.add_parser(
        "run", help="drive a bounded service run and print its report"
    )
    s.add_argument("--scheduler", default="pcaps", choices=SCHEDULER_NAMES)
    s.add_argument("--grid", default="DE", choices=GRID_CODES)
    s.add_argument("--executors", type=int, default=16)
    s.add_argument("--family", default="tpch", choices=("tpch", "alibaba"))
    s.add_argument(
        "--jobs", type=int, default=None,
        help="stop the stream after this many jobs",
    )
    s.add_argument(
        "--horizon", type=float, default=None,
        help="stop admitting arrivals after this simulated time (s)",
    )
    s.add_argument("--interarrival", type=float, default=20.0)
    s.add_argument(
        "--scales", type=int, nargs="+", default=[2],
        help="TPC-H data scales sampled per job",
    )
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--gamma", type=float, default=0.5)
    s.add_argument(
        "--gc-policy", default="retire", choices=("retire", "keep"),
        help="retire finished jobs in flight (O(1) memory) or keep them",
    )
    s.add_argument(
        "--window", type=float, default=600.0,
        help="recent-history window width (simulated s)",
    )
    s.add_argument("--epoch-events", type=int, default=4096)
    s.add_argument(
        "--max-epochs", type=int, default=None,
        help="stop early after this many epochs (default: run to drain)",
    )
    s.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="write rolling service checkpoints into DIR",
    )
    s.add_argument(
        "--checkpoint-every", type=int, default=8, metavar="EPOCHS",
        help="epochs between checkpoints (with --checkpoint-dir)",
    )
    s.add_argument(
        "--output", default=None,
        help="also write the report JSON here (for 'stream report')",
    )
    s.add_argument(
        "--export-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus-style text exposition on 127.0.0.1:PORT "
        "while running (0 = pick an ephemeral port; the address is "
        "printed to stderr)",
    )
    s.add_argument(
        "--export-jsonl", default=None, metavar="PATH",
        help="append one registry sample per epoch to PATH "
        "(JSONL time series, torn-tail safe)",
    )
    s.add_argument(
        "--slo", action="append", default=None, metavar="RULE",
        help="SLO rule evaluated each epoch, e.g. 'avg_jct>120@3' or "
        "'gauge:stream.jobs_active>500'; repeatable "
        "(see docs/observability.md)",
    )
    s.add_argument(
        "--slo-action", default="none", choices=("none", "pause-admission"),
        help="degradation action while any SLO alert fires "
        "(pause-admission sheds load; breaks exact replayability)",
    )
    s.add_argument(
        "--alerts-output", default=None, metavar="PATH",
        help="write the SLO alert log here (default: <obs-dir>/alerts.jsonl)",
    )
    s.add_argument("--quiet", action="store_true")
    _add_obs_args(s)
    s.set_defaults(func=_cmd_stream)

    s = stream_sub.add_parser(
        "report", help="re-render a saved service-run report"
    )
    s.add_argument(
        "--input", default="stream-report.json",
        help="report JSON written by 'stream run --output'",
    )
    s.set_defaults(func=_cmd_stream)

    s = stream_sub.add_parser(
        "sweep", help="run a streaming campaign preset against the store"
    )
    s.add_argument(
        "name", help="stream campaign preset (stream-smoke, stream-steady)"
    )
    s.add_argument("--store", default=DEFAULT_CAMPAIGN_STORE)
    s.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: CPU count; 0/1 = inline)",
    )
    s.add_argument("--quiet", action="store_true")
    _add_obs_args(s)
    s.set_defaults(func=_cmd_stream)

    p = sub.add_parser(
        "obs",
        help="observability: render metrics snapshots, build the dashboard",
    )
    obs_sub = p.add_subparsers(dest="cmd", required=True)

    o = obs_sub.add_parser(
        "report", help="render a collected metrics snapshot as text"
    )
    o.add_argument(
        "--metrics",
        default=os.path.join(DEFAULT_OBS_DIR, METRICS_FILENAME),
        help="metrics JSONL snapshot written by a --obs run",
    )
    o.set_defaults(func=_cmd_obs)

    o = obs_sub.add_parser(
        "dashboard",
        help="build the static HTML dashboard (stdlib only, no server)",
    )
    o.add_argument(
        "--output", default=os.path.join("dashboard", "index.html"),
        help="where to write the dashboard HTML",
    )
    o.add_argument(
        "--bench", nargs="*", default=None,
        help="BENCH_*.json files to chart (default: BENCH_*.json in cwd)",
    )
    o.add_argument(
        "--store", nargs="*", default=None,
        help="campaign result stores to aggregate "
        f"(default: {DEFAULT_CAMPAIGN_STORE} if present)",
    )
    o.add_argument(
        "--obs-dir", nargs="*", default=None,
        help="obs artifact directories to include "
        f"(default: {DEFAULT_OBS_DIR} if present)",
    )
    o.add_argument(
        "--history-dir", default=None,
        help="directory of per-run snapshot subdirectories (each holding "
        "BENCH_*.json) to render as headline-metric trends",
    )
    o.set_defaults(func=_cmd_obs)

    o = obs_sub.add_parser(
        "regress",
        help="gate on benchmark regressions: newest history snapshot vs "
        "a trailing baseline",
    )
    o.add_argument(
        "--history-dir", required=True,
        help="per-run snapshot directory (same layout the dashboard "
        "trend section reads)",
    )
    o.add_argument(
        "--window", type=int, default=5, metavar="N",
        help="trailing snapshots averaged into the baseline (default: 5)",
    )
    o.add_argument(
        "--tolerance", type=float, default=0.10, metavar="FRAC",
        help="relative change tolerated before a metric counts as "
        "regressed (default: 0.10)",
    )
    o.add_argument(
        "--min-points", type=int, default=3, metavar="N",
        help="history points a metric needs before a regression blocks "
        "(below this the check is advisory; default: 3)",
    )
    o.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report instead of text",
    )
    o.set_defaults(func=_cmd_obs)

    return parser


def _obs_label(args: argparse.Namespace) -> str:
    sub = getattr(args, "cmd", None)
    return f"{args.command} {sub}" if sub else str(args.command)


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected handler, under an observer when ``--obs`` is set."""
    if not getattr(args, "obs", False):
        return args.func(args)
    label = _obs_label(args)
    with collecting(label) as observer:
        with observer.tracer.span(f"repro {label}", cat="cli"):
            code = args.func(args)
    metrics_path, trace_path = observer.write_artifacts(args.obs_dir)
    print(f"obs: wrote {metrics_path} and {trace_path}", file=sys.stderr)
    return code


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level is not None:
        configure_logging(args.log_level)
    try:
        return _dispatch(args)
    except BrokenPipeError:
        # e.g. `repro campaign run ... | head`: the reader closed the pipe
        # mid-report. Swallow the noise and let the interpreter exit cleanly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
