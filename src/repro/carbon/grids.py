"""Synthetic grid models calibrated to Table 1 of the paper.

The paper evaluates on historical Electricity Maps traces from six power
grids (2020-2022, hourly, 26,304 points). Those traces are not
redistributable, so we synthesize statistically equivalent series: each grid
is described by the Table 1 marginals (min / max / mean / coefficient of
variation) plus a qualitative generation-mix signature that shapes its
diurnal and seasonal structure:

- ``PJM``  — US mid-Atlantic; mixed fossil/nuclear, low variability.
- ``CAISO``— California; heavy solar (midday "duck curve" dip).
- ``ON``   — Ontario; hydro/nuclear, very low baseline with occasional gas.
- ``DE``   — Germany; wind + solar, high variability on multi-day scales.
- ``NSW``  — New South Wales; coal baseline with growing solar.
- ``ZA``   — South Africa; coal-dominated, nearly flat.

The synthesis pipeline builds a structured signal (diurnal + seasonal +
autocorrelated noise), standardizes it, rescales it to the target mean and
coefficient of variation, and clips to the observed [min, max] range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.carbon.trace import DEFAULT_STEP_SECONDS, CarbonTrace

HOURS_PER_DAY = 24
HOURS_PER_YEAR = 8766  # 365.25 days
#: Length of the paper's traces: 3 years of hourly data (Table 1).
PAPER_TRACE_HOURS = 26_304


@dataclass(frozen=True)
class GridSpec:
    """Statistical and structural description of one power grid.

    The four marginal statistics are taken directly from Table 1; the four
    weights control how much of the signal's variance comes from each
    structural component (they are relative and get normalized during
    synthesis).
    """

    code: str
    description: str
    minimum: float
    maximum: float
    mean: float
    coeff_var: float
    solar_weight: float
    wind_weight: float
    seasonal_weight: float
    noise_weight: float

    @property
    def std(self) -> float:
        """Target standard deviation implied by mean and CoV."""
        return self.mean * self.coeff_var


GRID_SPECS: dict[str, GridSpec] = {
    "PJM": GridSpec(
        code="PJM",
        description="US mid-Atlantic: mixed fossil/nuclear, low variability",
        minimum=293.0,
        maximum=567.0,
        mean=425.0,
        coeff_var=0.110,
        solar_weight=0.3,
        wind_weight=0.2,
        seasonal_weight=0.3,
        noise_weight=0.2,
    ),
    "CAISO": GridSpec(
        code="CAISO",
        description="California: heavy solar, pronounced duck curve",
        minimum=83.0,
        maximum=451.0,
        mean=274.0,
        coeff_var=0.309,
        solar_weight=0.7,
        wind_weight=0.1,
        seasonal_weight=0.1,
        noise_weight=0.1,
    ),
    "ON": GridSpec(
        code="ON",
        description="Ontario: hydro/nuclear baseline, spiky gas peaking",
        minimum=12.0,
        maximum=179.0,
        mean=50.0,
        coeff_var=0.654,
        solar_weight=0.2,
        wind_weight=0.3,
        seasonal_weight=0.1,
        noise_weight=0.4,
    ),
    "DE": GridSpec(
        code="DE",
        description="Germany: wind + solar, strong multi-day variability",
        minimum=130.0,
        maximum=765.0,
        mean=440.0,
        coeff_var=0.280,
        solar_weight=0.35,
        wind_weight=0.4,
        seasonal_weight=0.1,
        noise_weight=0.15,
    ),
    "NSW": GridSpec(
        code="NSW",
        description="New South Wales: coal baseline with midday solar",
        minimum=267.0,
        maximum=817.0,
        mean=647.0,
        coeff_var=0.143,
        solar_weight=0.5,
        wind_weight=0.1,
        seasonal_weight=0.2,
        noise_weight=0.2,
    ),
    "ZA": GridSpec(
        code="ZA",
        description="South Africa: coal-dominated, nearly flat",
        minimum=586.0,
        maximum=785.0,
        mean=713.0,
        coeff_var=0.046,
        solar_weight=0.2,
        wind_weight=0.1,
        seasonal_weight=0.3,
        noise_weight=0.4,
    ),
}

GRID_CODES: tuple[str, ...] = tuple(GRID_SPECS)


def _solar_component(hours: np.ndarray) -> np.ndarray:
    """Midday dip: carbon intensity falls when the sun is up.

    Zero at night, most negative at solar noon. Solar output also varies by
    season (longer, stronger days in summer).
    """
    hour_of_day = hours % HOURS_PER_DAY
    day_of_year = (hours // HOURS_PER_DAY) % 365
    daylight = np.clip(np.sin(np.pi * (hour_of_day - 6.0) / 12.0), 0.0, None)
    season = 0.75 + 0.25 * np.cos(2.0 * np.pi * (day_of_year - 172.0) / 365.0)
    return -daylight * season


def _wind_component(n: int, rng: np.random.Generator) -> np.ndarray:
    """Multi-day autocorrelated fluctuation (AR(1) with ~36 h memory)."""
    phi = np.exp(-1.0 / 36.0)
    innovations = rng.normal(0.0, np.sqrt(1.0 - phi**2), size=n)
    series = np.empty(n)
    acc = rng.normal(0.0, 1.0)
    for i in range(n):
        acc = phi * acc + innovations[i]
        series[i] = acc
    return series


def _seasonal_component(hours: np.ndarray) -> np.ndarray:
    """Annual cycle: higher carbon in winter (heating + less solar)."""
    day_of_year = (hours / HOURS_PER_DAY) % 365.25
    return np.cos(2.0 * np.pi * (day_of_year - 15.0) / 365.25)


def _noise_component(n: int, rng: np.random.Generator) -> np.ndarray:
    """Short-memory hourly noise (AR(1) with ~4 h memory)."""
    phi = np.exp(-1.0 / 4.0)
    innovations = rng.normal(0.0, np.sqrt(1.0 - phi**2), size=n)
    series = np.empty(n)
    acc = rng.normal(0.0, 1.0)
    for i in range(n):
        acc = phi * acc + innovations[i]
        series[i] = acc
    return series


def _standardize(x: np.ndarray) -> np.ndarray:
    std = x.std()
    if std == 0:
        return np.zeros_like(x)
    return (x - x.mean()) / std


def synthesize_trace(
    grid: str | GridSpec,
    hours: int = PAPER_TRACE_HOURS,
    seed: int | None = 0,
    step_seconds: float = DEFAULT_STEP_SECONDS,
) -> CarbonTrace:
    """Generate a synthetic hourly carbon trace for one grid.

    Parameters
    ----------
    grid:
        A grid code from :data:`GRID_CODES` or a custom :class:`GridSpec`.
    hours:
        Number of hourly points (default: the paper's 26,304 = 3 years).
    seed:
        Seed for the noise components; identical seeds give identical traces.
    step_seconds:
        Simulated seconds per hourly step (see :class:`CarbonTrace`).

    Returns
    -------
    CarbonTrace
        A trace whose marginal statistics approximate the grid's Table 1 row.
    """
    spec = GRID_SPECS[grid] if isinstance(grid, str) else grid
    if hours <= 0:
        raise ValueError("hours must be positive")
    rng = np.random.default_rng(seed)
    hour_index = np.arange(hours, dtype=float)

    components = (
        spec.solar_weight * _standardize(_solar_component(hour_index)),
        spec.wind_weight * _wind_component(hours, rng),
        spec.seasonal_weight * _standardize(_seasonal_component(hour_index)),
        spec.noise_weight * _noise_component(hours, rng),
    )
    signal = _standardize(sum(components))

    # Clipping to [min, max] removes variance, so inflate the target std a
    # little before clipping to land near the Table 1 CoV afterwards.
    inflation = 1.0 + 0.35 * _clip_fraction(signal, spec)
    values = spec.mean + spec.std * inflation * signal
    values = np.clip(values, spec.minimum, spec.maximum)
    return CarbonTrace(values, step_seconds=step_seconds, name=spec.code)


def _clip_fraction(signal: np.ndarray, spec: GridSpec) -> float:
    """Fraction of points a naive rescale would clip at the spec's bounds."""
    raw = spec.mean + spec.std * signal
    clipped = np.mean((raw < spec.minimum) | (raw > spec.maximum))
    return float(clipped)


def all_grid_traces(
    hours: int = PAPER_TRACE_HOURS,
    seed: int | None = 0,
    step_seconds: float = DEFAULT_STEP_SECONDS,
) -> dict[str, CarbonTrace]:
    """Synthesize every Table 1 grid with deterministic per-grid seeds."""
    traces = {}
    for offset, code in enumerate(GRID_CODES):
        grid_seed = None if seed is None else seed + offset
        traces[code] = synthesize_trace(
            code, hours=hours, seed=grid_seed, step_seconds=step_seconds
        )
    return traces
