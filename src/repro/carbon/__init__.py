"""Carbon-intensity substrate.

This package replaces the paper's historical Electricity Maps traces with
synthetic, statistically calibrated grid models (see DESIGN.md, Section 2).
It provides:

- :class:`~repro.carbon.trace.CarbonTrace` — an hourly carbon-intensity
  series mapped onto simulation time.
- :mod:`~repro.carbon.grids` — six grid generators calibrated to Table 1 of
  the paper (PJM, CAISO, ON, DE, NSW, ZA).
- :mod:`~repro.carbon.forecast` — the 48-hour lookahead ``L``/``U`` bounds
  the schedulers consume.
- :class:`~repro.carbon.api.CarbonIntensityAPI` — a replaying "API" daemon
  mirroring the prototype's Electricity Maps client.
"""

from repro.carbon.api import CarbonIntensityAPI
from repro.carbon.forecast import CarbonForecaster, forecast_bounds
from repro.carbon.grids import (
    GRID_CODES,
    GRID_SPECS,
    GridSpec,
    synthesize_trace,
)
from repro.carbon.trace import CarbonTrace, TraceStats

__all__ = [
    "CarbonIntensityAPI",
    "CarbonForecaster",
    "CarbonTrace",
    "GridSpec",
    "GRID_CODES",
    "GRID_SPECS",
    "TraceStats",
    "forecast_bounds",
    "synthesize_trace",
]
