"""Carbon-intensity traces.

A :class:`CarbonTrace` holds an hourly series of grid carbon intensities (in
gCO2eq/kWh) and maps it onto simulation time. Following the paper's
experimental scaling (Section 6.1), one hour of grid time corresponds to
``step_seconds`` of simulated time (60 s by default, i.e. "1 minute of real
time is 1 hour of experiment time").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

DEFAULT_STEP_SECONDS = 60.0


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a trace, mirroring Table 1 of the paper."""

    minimum: float
    maximum: float
    mean: float
    coeff_var: float

    def as_row(self) -> tuple[float, float, float, float]:
        """Return ``(min, max, mean, coeff_var)`` for table printing."""
        return (self.minimum, self.maximum, self.mean, self.coeff_var)


class CarbonTrace:
    """An hourly carbon-intensity series addressable by simulation time.

    Parameters
    ----------
    values:
        Carbon intensity per hourly step, gCO2eq/kWh. Must be non-empty and
        non-negative.
    step_seconds:
        Simulated seconds per carbon step (default 60 s = 1 grid hour).
    wrap:
        If true (default), simulation times past the end of the trace wrap
        around to the beginning, so arbitrarily long experiments are
        well-defined. If false, the final value is held forever.
    name:
        Optional grid code for display (e.g. ``"DE"``).
    """

    def __init__(
        self,
        values: Sequence[float] | np.ndarray,
        step_seconds: float = DEFAULT_STEP_SECONDS,
        wrap: bool = True,
        name: str = "",
    ) -> None:
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("trace must be a non-empty 1-D sequence")
        if np.any(arr < 0) or not np.all(np.isfinite(arr)):
            raise ValueError("carbon intensities must be finite and >= 0")
        if step_seconds <= 0:
            raise ValueError("step_seconds must be positive")
        self._values = arr
        self.step_seconds = float(step_seconds)
        self.wrap = bool(wrap)
        self.name = name
        # Cumulative step integral for O(1) integrate() lookups; built
        # lazily on first use (many short-lived traces never integrate).
        self._cumulative: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The raw hourly series (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return int(self._values.size)

    @property
    def duration_seconds(self) -> float:
        """Simulated duration covered by one pass over the trace."""
        return len(self) * self.step_seconds

    def step_index(self, t: float) -> int:
        """Map a simulation time ``t`` (seconds) to a step index."""
        if t < 0:
            raise ValueError("time must be >= 0")
        idx = int(t // self.step_seconds)
        n = len(self)
        if idx >= n:
            idx = idx % n if self.wrap else n - 1
        return idx

    def intensity_at(self, t: float) -> float:
        """Carbon intensity ``c(t)`` at simulation time ``t``."""
        return float(self._values[self.step_index(t)])

    def next_change_after(self, t: float) -> float:
        """Simulation time of the next carbon-intensity update after ``t``.

        Carbon changes are scheduling events for PCAPS (Algorithm 1, line 2),
        so the simulator needs the boundary of the current step.
        """
        if t < 0:
            raise ValueError("time must be >= 0")
        steps_elapsed = int(t // self.step_seconds)
        return (steps_elapsed + 1) * self.step_seconds

    # ------------------------------------------------------------------
    # Derived traces
    # ------------------------------------------------------------------
    def slice(self, start_step: int, num_steps: int) -> "CarbonTrace":
        """A sub-trace of ``num_steps`` hourly values starting at ``start_step``.

        Indices wrap around the underlying series so any window is valid.
        """
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        n = len(self)
        idx = (start_step + np.arange(num_steps)) % n
        return CarbonTrace(
            self._values[idx],
            step_seconds=self.step_seconds,
            wrap=self.wrap,
            name=self.name,
        )

    def rescaled(self, step_seconds: float) -> "CarbonTrace":
        """The same series with a different simulation-time scale."""
        return CarbonTrace(
            self._values,
            step_seconds=step_seconds,
            wrap=self.wrap,
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Statistics and integration
    # ------------------------------------------------------------------
    def stats(self) -> TraceStats:
        """Min/max/mean/coefficient-of-variation, as in Table 1."""
        mean = float(self._values.mean())
        std = float(self._values.std())
        cov = std / mean if mean > 0 else 0.0
        return TraceStats(
            minimum=float(self._values.min()),
            maximum=float(self._values.max()),
            mean=mean,
            coeff_var=cov,
        )

    def bounds_over(self, t_start: float, t_end: float) -> tuple[float, float]:
        """``(L, U)`` over the simulation-time window ``[t_start, t_end)``."""
        if t_end <= t_start:
            raise ValueError("window must have positive length")
        first = self.step_index(t_start)
        last_exclusive = int(np.ceil(t_end / self.step_seconds))
        n = len(self)
        count = min(last_exclusive - int(t_start // self.step_seconds), n)
        idx = (first + np.arange(max(count, 1))) % n
        window = self._values[idx]
        return float(window.min()), float(window.max())

    def _cum(self) -> np.ndarray:
        """``cum[k]`` = integral of one trace pass over its first ``k`` steps."""
        if self._cumulative is None:
            self._cumulative = np.concatenate(
                ([0.0], np.cumsum(self._values * self.step_seconds))
            )
        return self._cumulative

    def cumulative_at(self, t: float) -> float:
        """``F(t)``: integral of ``c`` over ``[0, t]`` in gCO2eq·s/kWh.

        With wrapping, whole passes over the trace contribute the full-trace
        integral each; without, time past the end accrues at the final
        value. ``integrate(a, b)`` is just ``F(b) - F(a)``.
        """
        if t < 0:
            raise ValueError("time must be >= 0")
        cum = self._cum()
        n = len(self)
        step = self.step_seconds
        duration = self.duration_seconds
        if self.wrap:
            cycles, remainder = divmod(t, duration)
            idx = min(int(remainder // step), n - 1)
            return (
                cycles * cum[n]
                + cum[idx]
                + self._values[idx] * max(remainder - idx * step, 0.0)
            )
        if t >= duration:
            return float(cum[n] + self._values[n - 1] * (t - duration))
        idx = min(int(t // step), n - 1)
        return float(cum[idx] + self._values[idx] * max(t - idx * step, 0.0))

    def integrate(self, t_start: float, t_end: float) -> float:
        """Integral of ``c(t) dt`` over ``[t_start, t_end]`` in gCO2eq·s/kWh.

        Used by the ex-post carbon accounting: a busy executor over this
        interval emits carbon proportional to this integral. Computed from
        the precomputed cumulative step integral — two lookups instead of a
        per-segment walk.
        """
        if t_end < t_start:
            raise ValueError("t_end must be >= t_start")
        if t_end == t_start:
            return 0.0
        return float(self.cumulative_at(t_end) - self.cumulative_at(t_start))

    def integrate_many(
        self,
        t_start: Sequence[float] | np.ndarray,
        t_end: Sequence[float] | np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`integrate` over paired interval arrays.

        The batch form of the ex-post accounting: one numpy pass over every
        task (or hold) record instead of a Python loop per interval.
        """
        starts = np.asarray(t_start, dtype=float)
        ends = np.asarray(t_end, dtype=float)
        if starts.shape != ends.shape:
            raise ValueError("t_start and t_end must have matching shapes")
        if starts.size == 0:
            return np.zeros_like(starts)
        if np.any(starts < 0) or np.any(ends < starts):
            raise ValueError("need 0 <= t_start <= t_end elementwise")
        return self._cumulative_at_many(ends) - self._cumulative_at_many(starts)

    def _cumulative_at_many(self, t: np.ndarray) -> np.ndarray:
        """Vectorized ``F(t)`` (see :meth:`cumulative_at`)."""
        cum = self._cum()
        n = len(self)
        step = self.step_seconds
        duration = self.duration_seconds
        values = self._values
        if self.wrap:
            cycles, remainder = np.divmod(t, duration)
            idx = np.minimum((remainder // step).astype(np.intp), n - 1)
            partial = np.maximum(remainder - idx * step, 0.0)
            return cycles * cum[n] + cum[idx] + values[idx] * partial
        idx = np.minimum(
            (np.minimum(t, duration) // step).astype(np.intp), n - 1
        )
        within = cum[idx] + values[idx] * np.maximum(t - idx * step, 0.0)
        past_end = cum[n] + values[n - 1] * (t - duration)
        return np.where(t >= duration, past_end, within)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"CarbonTrace(name={self.name!r}, steps={len(self)}, "
            f"mean={s.mean:.1f}, cov={s.coeff_var:.3f})"
        )


def concatenate(traces: Iterable[CarbonTrace]) -> CarbonTrace:
    """Concatenate several traces with identical time scales."""
    traces = list(traces)
    if not traces:
        raise ValueError("need at least one trace")
    step = traces[0].step_seconds
    if any(tr.step_seconds != step for tr in traces):
        raise ValueError("all traces must share step_seconds")
    values = np.concatenate([tr.values for tr in traces])
    return CarbonTrace(values, step_seconds=step, name=traces[0].name)
