"""Short-term carbon-intensity forecasts.

The schedulers in the paper never see the future trace; they only consume
``L`` and ``U``, the minimum and maximum *forecasted* carbon intensities over
a lookahead window (48 hours by default — Section 6.1). This module produces
those bounds, optionally with multiplicative forecast error so robustness to
imperfect forecasts can be studied.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.carbon.trace import CarbonTrace

#: The paper's lookahead window (Section 6.1): 48 grid-hours.
DEFAULT_LOOKAHEAD_STEPS = 48


def forecast_bounds(
    trace: CarbonTrace,
    t: float,
    lookahead_steps: int = DEFAULT_LOOKAHEAD_STEPS,
) -> tuple[float, float]:
    """Perfect-forecast ``(L, U)`` over the next ``lookahead_steps`` hours.

    Matches the paper's setup where "U and L correspond to the maximum and
    minimum forecasted carbon intensities over a lookahead window of 48
    hours".
    """
    if lookahead_steps <= 0:
        raise ValueError("lookahead_steps must be positive")
    window = lookahead_steps * trace.step_seconds
    return trace.bounds_over(t, t + window)


@dataclass
class CarbonForecaster:
    """Stateful forecaster with optional error, one per experiment.

    Parameters
    ----------
    trace:
        The underlying carbon trace.
    lookahead_steps:
        Forecast horizon in hourly steps.
    error_std:
        Multiplicative log-normal error applied independently to the L and U
        estimates (0 = perfect forecast, the paper's setting).
    seed:
        Seed for the error process.
    """

    trace: CarbonTrace
    lookahead_steps: int = DEFAULT_LOOKAHEAD_STEPS
    error_std: float = 0.0
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.lookahead_steps <= 0:
            raise ValueError("lookahead_steps must be positive")
        if self.error_std < 0:
            raise ValueError("error_std must be >= 0")
        self._rng = np.random.default_rng(self.seed)
        self._cached_step: int | None = None
        self._cached_bounds: tuple[float, float] = (0.0, 0.0)

    def bounds(self, t: float) -> tuple[float, float]:
        """``(L, U)`` as seen by a scheduler at simulation time ``t``.

        Bounds are recomputed once per carbon step (forecasts update when new
        intensities are published, mirroring the prototype daemon). With
        nonzero ``error_std`` the returned bounds are perturbed but always
        kept consistent: ``0 <= L <= c(t) <= U`` never has to hold for a
        *forecast*, but we do enforce ``0 <= L <= U``.
        """
        step = self.trace.step_index(t)
        if step == self._cached_step:
            return self._cached_bounds
        low, high = forecast_bounds(self.trace, t, self.lookahead_steps)
        if self.error_std > 0:
            low *= float(np.exp(self._rng.normal(0.0, self.error_std)))
            high *= float(np.exp(self._rng.normal(0.0, self.error_std)))
            low, high = min(low, high), max(low, high)
        self._cached_step = step
        self._cached_bounds = (low, high)
        return self._cached_bounds
