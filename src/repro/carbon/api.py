"""Replaying carbon-intensity "API".

The paper's prototype runs a Python daemon that polls an external carbon
intensity API (Electricity Maps / WattTime) once per real-time minute and
exposes the current intensity plus forecast bounds to CAP and PCAPS
(Section 5.1, Section 6.3: "We implement a carbon intensity API that replays
historical traces"). This module is the equivalent component: a thin,
stateful facade over a :class:`~repro.carbon.trace.CarbonTrace` and a
:class:`~repro.carbon.forecast.CarbonForecaster`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.carbon.forecast import DEFAULT_LOOKAHEAD_STEPS, CarbonForecaster
from repro.carbon.trace import CarbonTrace


@dataclass(frozen=True)
class CarbonReading:
    """One API response: current intensity and forecast bounds."""

    time: float
    intensity: float
    lower_bound: float
    upper_bound: float


class CarbonIntensityAPI:
    """Replays a historical trace as if it were a live carbon API.

    Mirrors the prototype daemon: readings update at carbon-step boundaries,
    and each reading carries the 48-hour forecast bounds ``(L, U)`` the
    threshold functions require.
    """

    def __init__(
        self,
        trace: CarbonTrace,
        lookahead_steps: int = DEFAULT_LOOKAHEAD_STEPS,
        forecast_error_std: float = 0.0,
        seed: int | None = 0,
    ) -> None:
        self.trace = trace
        self._forecaster = CarbonForecaster(
            trace,
            lookahead_steps=lookahead_steps,
            error_std=forecast_error_std,
            seed=seed,
        )
        self._query_count = 0

    @property
    def query_count(self) -> int:
        """Number of readings served (for overhead accounting)."""
        return self._query_count

    def reading(self, t: float) -> CarbonReading:
        """The API response a scheduler would receive at time ``t``."""
        self._query_count += 1
        low, high = self._forecaster.bounds(t)
        return CarbonReading(
            time=t,
            intensity=self.trace.intensity_at(t),
            lower_bound=low,
            upper_bound=high,
        )

    def intensity(self, t: float) -> float:
        """Convenience accessor for the current intensity only."""
        return self.trace.intensity_at(t)

    def bounds(self, t: float) -> tuple[float, float]:
        """Convenience accessor for the forecast ``(L, U)`` only."""
        return self._forecaster.bounds(t)
