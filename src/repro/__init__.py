"""repro — reproduction of "Carbon- and Precedence-Aware Scheduling for
Data Processing Clusters" (Lechowicz et al., SIGCOMM 2025).

The package rebuilds the paper's full evaluation stack in pure Python:

- :mod:`repro.carbon` — carbon-intensity traces, six Table 1-calibrated
  grid models, forecasts, and a replaying carbon API;
- :mod:`repro.dag` — the stage-DAG job model and structural metrics;
- :mod:`repro.workloads` — TPC-H-like and Alibaba-like workload generators
  with Poisson arrivals;
- :mod:`repro.simulator` — the event-driven Spark cluster simulator
  (standalone and Kubernetes modes, executor hoarding, quotas, ex-post
  carbon accounting);
- :mod:`repro.schedulers` — the carbon-agnostic baselines (FIFO, the
  Kubernetes default, Weighted Fair, a Decima surrogate, GreenHadoop) and
  exact T-OPT/C-OPT searches;
- :mod:`repro.core` — the paper's contribution: PCAPS, CAP, the threshold
  functions, and the Theorems 4.3-4.6 analysis;
- :mod:`repro.experiments` — the declarative runner and per-table /
  per-figure producers;
- :mod:`repro.campaign` — parallel experiment campaigns: declarative sweep
  specs, a process-pool executor, and content-addressed result caching;
- :mod:`repro.cli` — ``python -m repro`` / ``repro`` command-line access.

Quickstart::

    from repro.carbon.api import CarbonIntensityAPI
    from repro.carbon.grids import synthesize_trace
    from repro.core import PCAPSScheduler
    from repro.schedulers import DecimaScheduler
    from repro.simulator import ClusterConfig, Simulation
    from repro.workloads import WorkloadSpec, build_workload

    trace = synthesize_trace("DE", seed=0).slice(0, 3000)
    jobs = build_workload(WorkloadSpec(family="tpch", num_jobs=25), seed=7)
    sim = Simulation(
        ClusterConfig(num_executors=25),
        PCAPSScheduler(DecimaScheduler(seed=0), gamma=0.5),
        CarbonIntensityAPI(trace),
    )
    result = sim.run(jobs)
"""

from repro.core.cap import CAPProvisioner
from repro.core.pcaps import PCAPSScheduler
from repro.simulator.engine import ClusterConfig, Simulation

__version__ = "1.0.0"

__all__ = [
    "CAPProvisioner",
    "ClusterConfig",
    "PCAPSScheduler",
    "Simulation",
    "__version__",
]
