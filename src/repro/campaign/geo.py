"""Geo campaigns: cartesian sweeps over federation-config fields.

The federation analogue of :mod:`repro.campaign.spec` +
:mod:`repro.campaign.executor`: a :class:`GeoCampaignSpec` is a base
:class:`~repro.geo.config.FederationConfig` plus axes, trials are keyed by
the same content-addressed scheme (config hash × code fingerprint) into the
same append-only :class:`~repro.campaign.store.ResultStore`, and re-runs
skip completed trials. Axis names may be dotted: ``workload.*`` reaches the
shared :class:`~repro.workloads.batch.WorkloadSpec`, ``transfer.*`` the
:class:`~repro.geo.config.TransferModel`, and ``regions.*`` applies one
override to *every* member region (e.g. ``regions.scheduler`` sweeps the
intra-cluster scheduler federation-wide).
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro import faults
from repro.campaign.cache import KEY_LENGTH, canonical_json, code_fingerprint
from repro.campaign.executor import (
    CampaignRun,
    CampaignRunner,
    capture_trial_record,
)
from repro.campaign.store import ResultStore, TrialRecord
from repro.disrupt.schedule import DisruptionEvent, DisruptionSchedule
from repro.geo.config import FederationConfig, RegionConfig, TransferModel
from repro.geo.federation import run_federation
from repro.geo.result import FederationResult
from repro.workloads.alibaba import AlibabaWorkloadModel
from repro.workloads.batch import WorkloadSpec

Axes = Mapping[str, Iterable[Any]] | Iterable[tuple[str, Iterable[Any]]]

#: ``on_progress(completed, total, line)`` — mirrors the campaign executor.
ProgressCallback = Callable[[int, int, str], None]


# ----------------------------------------------------------------------
# Serialization (store records, trial keys)
# ----------------------------------------------------------------------
def federation_to_dict(config: FederationConfig) -> dict[str, Any]:
    """Serialize a federation config (all nesting) to plain JSON types."""
    raw = dataclasses.asdict(config)

    def _plain(obj: Any) -> Any:
        if isinstance(obj, dict):
            return {k: _plain(v) for k, v in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [_plain(v) for v in obj]
        return obj

    return _plain(raw)


def federation_from_dict(data: Mapping[str, Any]) -> FederationConfig:
    """Rebuild a :class:`FederationConfig` from :func:`federation_to_dict`."""
    params = dict(data)
    params["regions"] = tuple(
        RegionConfig(**region) for region in params.get("regions", ())
    )
    workload = dict(params.get("workload", {}))
    if isinstance(workload.get("alibaba_model"), Mapping):
        workload["alibaba_model"] = AlibabaWorkloadModel(**workload["alibaba_model"])
    if "tpch_scales" in workload:
        workload["tpch_scales"] = tuple(workload["tpch_scales"])
    params["workload"] = WorkloadSpec(**workload)
    if isinstance(params.get("transfer"), Mapping):
        params["transfer"] = TransferModel(**params["transfer"])
    if isinstance(params.get("disruptions"), Mapping):
        params["disruptions"] = DisruptionSchedule(
            events=tuple(
                DisruptionEvent(**event)
                for event in params["disruptions"].get("events", ())
            )
        )
    return FederationConfig(**params)


def geo_trial_key(
    config: FederationConfig, code_version: str | None = None
) -> str:
    """Content-addressed identity of one federation trial."""
    payload = {
        "code_version": (
            code_version if code_version is not None else code_fingerprint()
        ),
        "kind": "federation",
        "config": federation_to_dict(config),
    }
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()[:KEY_LENGTH]


def federation_metrics(result: FederationResult) -> dict[str, Any]:
    """The summary serialized for one successful federation trial."""
    return {
        "total_carbon_g": result.total_carbon_g,
        "compute_carbon_g": result.compute_carbon_g,
        "transfer_carbon_g": result.transfer_carbon_g,
        "ect": result.ect,
        "avg_jct": result.avg_jct,
        "avg_stretch": result.avg_stretch,
        "num_jobs": result.num_jobs,
        "moved_jobs": result.moved_jobs(),
        "jobs_per_region": result.jobs_per_region(),
        "rerouted_jobs": len(result.reroutes),
        "migrated_jobs": result.migrated_jobs(),
        "failover_transfer_carbon_g": result.failover_transfer_carbon_g,
    }


# ----------------------------------------------------------------------
# Spec + axes
# ----------------------------------------------------------------------
def apply_geo_axis(
    config: FederationConfig, field_name: str, value: Any
) -> FederationConfig:
    """Return ``config`` with one (possibly dotted) field replaced."""
    if field_name.startswith("workload."):
        sub = field_name.split(".", 1)[1]
        return replace(config, workload=replace(config.workload, **{sub: value}))
    if field_name.startswith("transfer."):
        sub = field_name.split(".", 1)[1]
        return replace(config, transfer=replace(config.transfer, **{sub: value}))
    if field_name.startswith("regions."):
        sub = field_name.split(".", 1)[1]
        return replace(
            config,
            regions=tuple(replace(r, **{sub: value}) for r in config.regions),
        )
    return replace(config, **{field_name: value})


@dataclass(frozen=True)
class GeoCampaignSpec:
    """A named cartesian sweep over federation-config fields.

    The ``baseline`` routing is guaranteed a trial per replicate combination
    (every axis except ``routing``), so normalized geo reports can always be
    computed from the store — mirroring :class:`CampaignSpec`'s contract.
    """

    name: str
    base: FederationConfig
    axes: tuple[tuple[str, tuple[Any, ...]], ...]
    baseline: str = "round-robin"
    description: str = ""

    def __init__(
        self,
        name: str,
        base: FederationConfig,
        axes: Axes,
        baseline: str = "round-robin",
        description: str = "",
    ) -> None:
        pairs = axes.items() if isinstance(axes, Mapping) else axes
        normalized = tuple((str(k), tuple(v)) for k, v in pairs)
        for field_name, values in normalized:
            if not values:
                raise ValueError(f"axis {field_name!r} has no values")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "axes", normalized)
        object.__setattr__(self, "baseline", baseline)
        object.__setattr__(self, "description", description)

    def axis_summary(self) -> str:
        return " · ".join(f"{name}×{len(values)}" for name, values in self.axes)

    def trials(self) -> list[FederationConfig]:
        """Expand the spec into concrete, deduplicated trial configs."""
        product_trials = []
        names = [name for name, _ in self.axes]
        for combo in itertools.product(*(values for _, values in self.axes)):
            config = self.base
            for field_name, value in zip(names, combo):
                config = apply_geo_axis(config, field_name, value)
            product_trials.append(config)

        configs: list[FederationConfig] = []
        if not any(c.routing == self.baseline for c in product_trials):
            replicate_axes = [
                (name, values)
                for name, values in self.axes
                if name != "routing"
            ]
            rep_names = [name for name, _ in replicate_axes]
            for combo in itertools.product(
                *(values for _, values in replicate_axes)
            ):
                config = self.base
                for field_name, value in zip(rep_names, combo):
                    config = apply_geo_axis(config, field_name, value)
                configs.append(config.with_routing(self.baseline))
        configs.extend(product_trials)
        return list(dict.fromkeys(configs))


def geo_presets() -> dict[str, GeoCampaignSpec]:
    """Named geo campaign specs (laptop scale)."""
    tiny = WorkloadSpec(family="tpch", num_jobs=6, mean_interarrival=10.0,
                        tpch_scales=(2,))
    sweep_workload = WorkloadSpec(
        family="tpch", num_jobs=24, mean_interarrival=20.0, tpch_scales=(2, 10)
    )
    specs = [
        GeoCampaignSpec(
            "geo-smoke",
            FederationConfig(
                regions=(
                    RegionConfig(name="de", grid="DE", scheduler="fifo",
                                 num_executors=4),
                    RegionConfig(name="on", grid="ON", scheduler="fifo",
                                 num_executors=4),
                ),
                workload=tiny,
            ),
            axes={"routing": ("round-robin", "carbon-forecast")},
            description="2-trial federation sanity campaign (tests, CI)",
        ),
        GeoCampaignSpec(
            "geo-sweep",
            FederationConfig.six_grid(
                scheduler="pcaps", num_executors=10, workload=sweep_workload
            ),
            axes={
                "routing": (
                    "round-robin",
                    "queue-aware",
                    "carbon-greedy",
                    "carbon-forecast",
                ),
                "seed": (0, 1, 2),
            },
            description="six-grid federation: 4 routing policies × 3 seeds",
        ),
        GeoCampaignSpec(
            "disrupt-sweep",
            FederationConfig(
                regions=(
                    RegionConfig(name="de", grid="DE", scheduler="pcaps",
                                 num_executors=8),
                    RegionConfig(name="on", grid="ON", scheduler="pcaps",
                                 num_executors=8),
                    RegionConfig(name="caiso", grid="CAISO", scheduler="pcaps",
                                 num_executors=8),
                ),
                workload=WorkloadSpec(
                    family="tpch", num_jobs=18, mean_interarrival=15.0,
                    tpch_scales=(2,),
                ),
                disruptions=DisruptionSchedule.generate(
                    seed=7,
                    regions=("de", "on", "caiso"),
                    horizon_s=900.0,
                    num_outages=2,
                    mean_outage_s=600.0,
                    num_curtailments=1,
                    num_blackouts=1,
                ),
            ),
            axes={
                "routing": (
                    "round-robin",
                    "queue-aware",
                    "carbon-forecast",
                ),
                "failover": (True, False),
                "seed": (0, 1),
            },
            description="outage/curtailment/blackout resilience: "
            "failover on vs off, per routing policy",
        ),
        GeoCampaignSpec(
            "geo-schedulers",
            FederationConfig.six_grid(num_executors=10, workload=sweep_workload),
            axes={
                "routing": ("round-robin", "carbon-forecast"),
                "regions.scheduler": ("fifo", "decima", "pcaps"),
            },
            description="does intra-cluster carbon-awareness still pay "
            "under spatial routing?",
        ),
    ]
    return {spec.name: spec for spec in specs}


# ----------------------------------------------------------------------
# Execution against the shared result store
# ----------------------------------------------------------------------
def geo_trial_label(config: FederationConfig) -> str:
    label = (
        f"{config.routing} regions={len(config.regions)} "
        f"seed={config.seed}"
    )
    if config.disruptions is not None:
        label += (
            f" disrupted×{len(config.disruptions)}"
            f" failover={'on' if config.failover else 'off'}"
        )
    return label


def run_geo_trial_to_record(
    key: str, campaign: str, config: FederationConfig, attempt: int = 1
) -> TrialRecord:
    """Execute one federation trial, capturing failure as an error record."""

    def execute():
        # No-op unless a fault plan is active — geo trials share the
        # scheduler trials' chaos-testing surface.
        faults.maybe_inject_worker(key, attempt)
        return run_federation(config)

    return capture_trial_record(
        key,
        campaign,
        federation_to_dict(config),
        execute,
        federation_metrics,
    )


def _geo_pool_worker(
    payload: tuple[str, str, dict], attempt: int = 1, checkpoint=None
) -> TrialRecord:
    """Top-level (picklable) worker: rebuild the config, run, summarize.

    ``checkpoint`` is accepted for supervisor-loop signature compatibility
    and ignored: federation trials compose many steppers and do not
    checkpoint mid-flight (their inner engines could, but the composition
    state lives here, not in any single stepper).
    """
    key, campaign, config_dict = payload
    return run_geo_trial_to_record(
        key, campaign, federation_from_dict(config_dict), attempt=attempt
    )


class GeoCampaignRunner(CampaignRunner):
    """:class:`CampaignRunner` sweeping :class:`FederationConfig` trials.

    Inherits the whole resume/record/progress/pool loop; only the
    config-type hooks differ, so geo campaigns share the scheduler
    campaigns' store format, caching semantics, and process-pool fan-out.
    """

    worker = staticmethod(_geo_pool_worker)

    def trial_key_for(self, config: FederationConfig) -> str:
        return geo_trial_key(config, self.code_version)

    def run_record(
        self, key: str, campaign: str, config: FederationConfig, attempt: int = 1
    ) -> TrialRecord:
        return run_geo_trial_to_record(key, campaign, config, attempt=attempt)

    def payload_for(
        self, key: str, campaign: str, config: FederationConfig
    ) -> tuple:
        return (key, campaign, federation_to_dict(config))

    def label_for(self, record: TrialRecord) -> str:
        return geo_trial_label(federation_from_dict(record.config))


#: A finished geo campaign — same shape as any campaign run.
GeoCampaignRun = CampaignRun


def keyed_geo_trials(
    spec: GeoCampaignSpec, code_version: str | None = None
) -> list[tuple[str, FederationConfig]]:
    """(key, config) per trial, deduplicated, in campaign order."""
    return GeoCampaignRunner(
        store=None, code_version=code_version
    ).keyed_trials(spec)


def run_geo_campaign(
    spec: GeoCampaignSpec,
    store: ResultStore,
    resume: bool = True,
    on_progress: ProgressCallback | None = None,
    workers: int | None = None,
) -> CampaignRun:
    """Execute every federation trial not already in the store.

    Thin wrapper over :class:`GeoCampaignRunner` (``workers`` as in
    :class:`CampaignRunner`: ``None`` = CPU count, ``0``/``1`` = inline).
    """
    runner = GeoCampaignRunner(store, workers=workers)
    return runner.run(spec, resume=resume, on_progress=on_progress)


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def geo_campaign_report(
    records: list[TrialRecord], baseline: str = "round-robin"
) -> list[dict[str, Any]]:
    """Mean metrics per routing policy, normalized to the baseline policy.

    Groups the spec's ``ok`` records by routing, averages the global
    metrics over replicates, and reports carbon change vs. the baseline
    routing's mean — the geo analogue of the paper's normalized tables.
    """
    by_routing: dict[str, list[TrialRecord]] = {}
    for record in records:
        if record.ok:
            by_routing.setdefault(record.config["routing"], []).append(record)

    def mean_of(group: list[TrialRecord], metric: str) -> float:
        return float(np.mean([r.metrics[metric] for r in group]))

    means = {
        routing: {
            metric: mean_of(group, metric)
            for metric in ("total_carbon_g", "ect", "avg_jct", "avg_stretch")
        }
        for routing, group in by_routing.items()
    }
    base = means.get(baseline)
    rows = []
    for routing, m in means.items():
        row = {
            "routing": routing,
            "replicates": len(by_routing[routing]),
            **m,
        }
        if base is not None and base["total_carbon_g"] > 0:
            row["carbon_reduction_pct"] = 100.0 * (
                1.0 - m["total_carbon_g"] / base["total_carbon_g"]
            )
            row["ect_ratio"] = (
                m["ect"] / base["ect"] if base["ect"] > 0 else 1.0
            )
            row["jct_ratio"] = (
                m["avg_jct"] / base["avg_jct"] if base["avg_jct"] > 0 else 1.0
            )
        rows.append(row)
    rows.sort(key=lambda r: r["total_carbon_g"])
    return rows


def format_geo_report(rows: list[dict[str, Any]], title: str = "") -> str:
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'routing':<18} {'n':>3} {'carbon_g':>10} {'Δcarbon':>9} "
        f"{'ECT':>8} {'JCT':>8} {'stretch':>8}"
    )
    for row in rows:
        delta = (
            f"{row['carbon_reduction_pct']:>+8.1f}%"
            if "carbon_reduction_pct" in row
            else f"{'—':>9}"
        )
        lines.append(
            f"{row['routing']:<18} {row['replicates']:>3} "
            f"{row['total_carbon_g']:>10.1f} {delta} "
            f"{row['ect']:>8.1f} {row['avg_jct']:>8.1f} "
            f"{row['avg_stretch']:>8.2f}"
        )
    return "\n".join(lines)
