"""Campaign execution: process-pool fan-out with caching and resume.

The runner expands a spec into trials, drops every trial whose key already
has a successful record in the store (the cache hit path), and fans the rest
across a :class:`~concurrent.futures.ProcessPoolExecutor`. Each worker runs
one trial end to end and returns a :class:`TrialRecord`; a crashing trial
produces an ``error`` record instead of killing the campaign, and error
records don't count as completed, so a later resume retries them.

Determinism: a trial's results are a pure function of its config — workload
generation, scheduler randomness, and trace synthesis are all seeded from
config fields — so neither pool scheduling order nor worker count affects
any metric. That property (pinned by the test suite) is what makes the
content-addressed cache sound.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.campaign.cache import CacheStats, trial_key
from repro.campaign.spec import CampaignSpec, config_from_dict, config_to_dict
from repro.campaign.store import (
    STATUS_ERROR,
    STATUS_OK,
    ResultStore,
    TrialRecord,
    result_metrics,
)
from repro.carbon.trace import CarbonTrace
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.obs.observer import current as _current_observer
from repro.simulator.metrics import ExperimentResult

#: ``on_progress(completed, total, line)`` — called once per finished trial
#: (including the initial batch of cache hits, reported as one step each).
ProgressCallback = Callable[[int, int, str], None]


def execute_trial(
    config: ExperimentConfig, carbon_trace: CarbonTrace | None = None
) -> ExperimentResult:
    """Run one fully-resolved trial. The single funnel every path uses."""
    return run_experiment(config, carbon_trace=carbon_trace)


def trial_label(config: ExperimentConfig) -> str:
    """Short human-readable trial identity for progress lines."""
    parts = [config.scheduler, f"grid={config.grid}", f"seed={config.seed}"]
    if config.trace_start_step:
        parts.append(f"start={config.trace_start_step}")
    if config.scheduler == "pcaps":
        parts.append(f"gamma={config.gamma}")
    if config.cap_min_quota is not None:
        parts.append(f"B={config.cap_min_quota}")
    return " ".join(parts)


def capture_trial_record(
    key: str,
    campaign: str,
    config_dict: dict,
    execute: Callable[[], Any],
    metrics_of: Callable[[Any], dict],
) -> TrialRecord:
    """Run one trial through the shared failure-isolation scaffold.

    The single place timing, ``ok``/``error`` status, and traceback capture
    live; both scheduler trials (here) and federation trials
    (:mod:`repro.campaign.geo`) funnel through it.
    """
    start = time.perf_counter()
    try:
        result = execute()
        return TrialRecord(
            key=key,
            campaign=campaign,
            config=config_dict,
            status=STATUS_OK,
            metrics=metrics_of(result),
            duration_s=time.perf_counter() - start,
        )
    except Exception as exc:  # failure isolation: one trial, one record
        return TrialRecord(
            key=key,
            campaign=campaign,
            config=config_dict,
            status=STATUS_ERROR,
            error="".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip(),
            duration_s=time.perf_counter() - start,
        )


def run_trial_to_record(
    key: str, campaign: str, config: ExperimentConfig
) -> TrialRecord:
    """Execute one trial, capturing failure as an ``error`` record."""
    return capture_trial_record(
        key,
        campaign,
        config_to_dict(config),
        lambda: execute_trial(config),
        result_metrics,
    )


def _pool_worker(payload: tuple[str, str, dict]) -> TrialRecord:
    """Top-level (picklable) worker: rebuild the config, run, summarize."""
    key, campaign, config_dict = payload
    return run_trial_to_record(key, campaign, config_from_dict(config_dict))


@dataclass
class CampaignRun:
    """Everything a finished :meth:`CampaignRunner.run` hands back."""

    spec: CampaignSpec
    records: list[TrialRecord]
    stats: CacheStats = field(default_factory=CacheStats)
    wall_time_s: float = 0.0

    @property
    def failures(self) -> list[TrialRecord]:
        return [r for r in self.records if not r.ok]

    @property
    def ok_records(self) -> list[TrialRecord]:
        return [r for r in self.records if r.ok]


class CampaignRunner:
    """Runs campaigns against one store, with a process pool and caching.

    The resume/record/progress loop is config-type agnostic: subclasses
    (e.g. the federation campaigns in :mod:`repro.campaign.geo`) override
    the ``trial_key_for`` / ``run_record`` / ``payload_for`` / ``label_for``
    hooks and the picklable ``worker`` entry point to sweep a different
    config type through the identical store, cache, and pool machinery.

    Parameters
    ----------
    store:
        Result store consulted for cache hits and appended to as trials
        finish.
    workers:
        Pool size. ``None`` uses the CPU count; ``0``/``1`` runs trials
        inline in this process (no pool — useful for tests and tiny runs).
    code_version:
        Folded into every trial key; defaults to ``repro.__version__``.
    """

    #: Top-level (picklable) pool entry point taking one payload tuple.
    worker = staticmethod(_pool_worker)

    def __init__(
        self,
        store: ResultStore,
        workers: int | None = None,
        code_version: str | None = None,
    ) -> None:
        self.store = store
        self.workers = workers
        self.code_version = code_version

    # -- config-type hooks (overridden by e.g. GeoCampaignRunner) --------
    def trial_key_for(self, config) -> str:
        return trial_key(config, self.code_version)

    def run_record(self, key: str, campaign: str, config) -> TrialRecord:
        """Execute one trial inline, capturing failure as an error record."""
        return run_trial_to_record(key, campaign, config)

    def payload_for(self, key: str, campaign: str, config) -> tuple:
        """The picklable payload handed to :attr:`worker`."""
        return (key, campaign, config_to_dict(config))

    def label_for(self, record: TrialRecord) -> str:
        return trial_label(config_from_dict(record.config))

    # ------------------------------------------------------------------
    def keyed_trials(self, spec) -> list[tuple[str, Any]]:
        """(key, config) per trial, deduplicated, in campaign order.

        Config values are whatever type the spec expands to —
        :class:`ExperimentConfig` here, ``FederationConfig`` under
        :class:`~repro.campaign.geo.GeoCampaignRunner`.
        """
        seen: dict[str, Any] = {}
        for config in spec.trials():
            seen.setdefault(self.trial_key_for(config), config)
        return list(seen.items())

    def collect(self, spec: CampaignSpec) -> list[TrialRecord]:
        """The spec's stored records only — no execution (``report``)."""
        return self.store.select([key for key, _ in self.keyed_trials(spec)])

    def run(
        self,
        spec: CampaignSpec,
        resume: bool = True,
        on_progress: ProgressCallback | None = None,
    ) -> CampaignRun:
        """Execute every trial of ``spec`` not already in the store.

        Trials are deduplicated by content-addressed key (config hash ×
        code version), stored records are reused when ``resume`` is true
        (so re-runs and overlapping sweeps cost nothing), and the rest
        fan out across the process pool with failure isolation — one
        crashing trial is recorded with its traceback and excluded from
        the cache, never killing the campaign. ``on_progress`` receives
        ``(done, total, label)`` per completed trial. Returns a
        :class:`CampaignRun` with per-trial records and cache stats;
        aggregate tables come from :mod:`repro.campaign.reports` using
        the store alone.
        """
        started = time.perf_counter()
        observer = _current_observer()
        span_start = observer.tracer.now_us() if observer is not None else 0.0
        keyed = self.keyed_trials(spec)
        completed = self.store.completed() if resume else {}

        records: dict[str, TrialRecord] = {}
        pending: list[tuple[str, ExperimentConfig]] = []
        for key, config in keyed:
            if key in completed:
                records[key] = completed[key]
            else:
                pending.append((key, config))
        stats = CacheStats(hits=len(records), misses=len(pending))

        if observer is not None:
            registry = observer.registry
            registry.counter("campaign.store.hits").inc(stats.hits)
            registry.counter("campaign.store.misses").inc(stats.misses)
            obs_ok = registry.counter("campaign.trials.ok")
            obs_failed = registry.counter("campaign.trials.failed")
            tracer = observer.tracer
        else:
            obs_ok = obs_failed = tracer = None

        total = len(keyed)
        done = 0
        for key in records:
            done += 1
            if on_progress is not None:
                on_progress(
                    done, total, f"cached {self.label_for(records[key])}"
                )

        def finish(record: TrialRecord) -> None:
            nonlocal done
            self.store.append(record)
            records[record.key] = record
            done += 1
            if tracer is not None:
                dur_us = record.duration_s * 1e6
                tracer.complete(
                    f"trial {self.label_for(record)}",
                    start_us=max(0.0, tracer.now_us() - dur_us),
                    dur_us=dur_us,
                    cat="campaign",
                    key=record.key[:12],
                    ok=record.ok,
                )
                (obs_ok if record.ok else obs_failed).inc()
            if on_progress is not None:
                verb = "ok   " if record.ok else "FAIL "
                label = self.label_for(record)
                on_progress(done, total, f"{verb}{label} ({record.duration_s:.2f}s)")

        workers = self._effective_workers(len(pending))
        if workers <= 1:
            for key, config in pending:
                finish(self.run_record(key, spec.name, config))
        elif pending:
            payloads = [
                self.payload_for(key, spec.name, config)
                for key, config in pending
            ]
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(self.worker, p) for p in payloads]
                for future in as_completed(futures):
                    finish(future.result())

        ordered = [records[key] for key, _ in keyed if key in records]
        wall_time_s = time.perf_counter() - started
        if observer is not None:
            registry = observer.registry
            registry.gauge("campaign.workers").set(workers)
            executed = [records[key] for key, _ in pending if key in records]
            if executed and wall_time_s > 0:
                busy = sum(r.duration_s for r in executed)
                registry.gauge("campaign.worker_utilization").set(
                    min(1.0, busy / (wall_time_s * max(1, workers)))
                )
            observer.tracer.complete(
                f"campaign {spec.name}",
                start_us=span_start,
                dur_us=observer.tracer.now_us() - span_start,
                cat="campaign",
                trials=total,
                cache_hits=stats.hits,
                executed=len(pending),
            )
        return CampaignRun(
            spec=spec,
            records=ordered,
            stats=stats,
            wall_time_s=wall_time_s,
        )

    def _effective_workers(self, pending: int) -> int:
        if self.workers is not None:
            return max(0, self.workers)
        return min(os.cpu_count() or 1, max(pending, 1))


def run_matchup_trials(
    scheduler_names: Iterable[str],
    config: ExperimentConfig,
    carbon_trace: CarbonTrace | None = None,
) -> dict[str, ExperimentResult]:
    """In-process matchup through the campaign layer, full results returned.

    Backs :func:`repro.experiments.runner.run_matchup`: expands a
    :func:`~repro.campaign.spec.matchup_spec` and runs every trial inline,
    sharing one carbon trace object so all schedulers see the identical
    slice without re-synthesis.
    """
    from repro.campaign.spec import matchup_spec
    from repro.experiments.runner import carbon_trace_for

    trace = carbon_trace if carbon_trace is not None else carbon_trace_for(config)
    spec = matchup_spec(scheduler_names, config)
    return {
        trial.scheduler: execute_trial(trial, carbon_trace=trace)
        for trial in spec.trials()
    }
