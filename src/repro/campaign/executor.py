"""Campaign execution: supervised process-pool fan-out with caching/resume.

The runner expands a spec into trials, drops every trial whose key already
has a successful record in the store (the cache hit path), and fans the rest
across a :class:`~concurrent.futures.ProcessPoolExecutor`. Each worker runs
one trial end to end and returns a :class:`TrialRecord`; a crashing trial
produces an ``error`` record instead of killing the campaign, and error
records don't count as completed, so a later resume retries them.

The pool loop is *supervised* (knobs on :class:`~repro.campaign.supervise.
SupervisorConfig`): attempts that fail, hang past the per-trial timeout, or
die with their worker are retried under seeded exponential backoff up to a
bounded attempt budget; keys that exhaust the budget are quarantined —
recorded as failed :class:`TrialRecord`\\ s carrying the full attempt
history, never retried again this run. A broken pool (worker killed by the
OS) is rebuilt and its surviving in-flight trials resubmitted. SIGINT /
SIGTERM stop the run gracefully: completed futures are drained into the
store first, then :class:`~repro.campaign.supervise.CampaignInterrupted`
propagates, so a follow-up ``resume`` continues where the interrupt landed.

Determinism: a trial's results are a pure function of its config — workload
generation, scheduler randomness, and trace synthesis are all seeded from
config fields — so neither pool scheduling order, worker count, nor retry
schedule affects any metric. That property (pinned by the test suite) is
what makes the content-addressed cache sound.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
)
from concurrent.futures import (
    wait as futures_wait,
)
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Iterator

from repro import faults
from repro.campaign.cache import CacheStats, trial_key
from repro.campaign.spec import CampaignSpec, config_from_dict, config_to_dict
from repro.campaign.store import (
    STATUS_ERROR,
    STATUS_OK,
    ResultStore,
    TrialRecord,
    result_metrics,
)
from repro.campaign.supervise import (
    CampaignInterrupted,
    CheckpointPolicy,
    SupervisorConfig,
    backoff_delay,
)
from repro.carbon.trace import CarbonTrace
from repro.experiments.runner import (
    ExperimentConfig,
    run_experiment,
    simulation_for,
    workload_for,
)
from repro.ioutil import atomic_write_bytes
from repro.obs.observer import current as _current_observer
from repro.simulator.metrics import ExperimentResult

#: ``on_progress(completed, total, line)`` — called once per finished trial
#: (including the initial batch of cache hits, reported as one step each).
ProgressCallback = Callable[[int, int, str], None]


def execute_trial(
    config: ExperimentConfig, carbon_trace: CarbonTrace | None = None
) -> ExperimentResult:
    """Run one fully-resolved trial. The single funnel every path uses."""
    return run_experiment(config, carbon_trace=carbon_trace)


def trial_label(config: ExperimentConfig) -> str:
    """Short human-readable trial identity for progress lines."""
    parts = [config.scheduler, f"grid={config.grid}", f"seed={config.seed}"]
    if config.trace_start_step:
        parts.append(f"start={config.trace_start_step}")
    if config.scheduler == "pcaps":
        parts.append(f"gamma={config.gamma}")
    if config.cap_min_quota is not None:
        parts.append(f"B={config.cap_min_quota}")
    return " ".join(parts)


def capture_trial_record(
    key: str,
    campaign: str,
    config_dict: dict,
    execute: Callable[[], Any],
    metrics_of: Callable[[Any], dict],
) -> TrialRecord:
    """Run one trial through the shared failure-isolation scaffold.

    The single place timing, ``ok``/``error`` status, and traceback capture
    live; both scheduler trials (here) and federation trials
    (:mod:`repro.campaign.geo`) funnel through it.
    """
    start = time.perf_counter()
    try:
        result = execute()
        return TrialRecord(
            key=key,
            campaign=campaign,
            config=config_dict,
            status=STATUS_OK,
            metrics=metrics_of(result),
            duration_s=time.perf_counter() - start,
        )
    except Exception as exc:  # failure isolation: one trial, one record
        return TrialRecord(
            key=key,
            campaign=campaign,
            config=config_dict,
            status=STATUS_ERROR,
            error="".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip(),
            duration_s=time.perf_counter() - start,
        )


def execute_trial_checkpointed(
    key: str,
    config: ExperimentConfig,
    policy: CheckpointPolicy,
    attempt: int = 1,
) -> ExperimentResult:
    """Run one trial through a periodically-checkpointing stepper.

    If a checkpoint for ``key`` exists (a previous attempt died mid-trial),
    the stepper restores it and resumes mid-flight instead of restarting; a
    corrupt checkpoint falls back to a fresh start. The checkpoint
    determinism contract (tests/test_checkpoint.py) makes the resumed run
    bit-identical to an uninterrupted one, so resuming never changes
    results — only saves work. Checkpoint writes are atomic, and the file
    is removed on success so a finished trial leaves nothing behind.
    """
    from repro.simulator.engine import SimulationStepper

    path = policy.path_for(key)
    stepper = None
    if path.exists():
        try:
            stepper = SimulationStepper.restore(path.read_bytes())
        except Exception:
            path.unlink(missing_ok=True)  # corrupt checkpoint: start fresh
    if stepper is None:
        stepper = simulation_for(config).stepper()
        for sub in workload_for(config):
            stepper.submit(sub)
    crash_after = faults.crash_event_point(key, attempt)
    last_saved = stepper.events_processed
    while stepper.events:
        stepper.step()
        if stepper.events_processed - last_saved >= policy.every_events:
            atomic_write_bytes(path, stepper.checkpoint())
            last_saved = stepper.events_processed
        if crash_after is not None and stepper.events_processed >= crash_after:
            os._exit(faults.CRASH_EXIT_CODE)
    result = stepper.result()
    path.unlink(missing_ok=True)
    return result


def run_trial_to_record(
    key: str,
    campaign: str,
    config: ExperimentConfig,
    attempt: int = 1,
    checkpoint: CheckpointPolicy | None = None,
) -> TrialRecord:
    """Execute one trial, capturing failure as an ``error`` record."""

    def execute() -> ExperimentResult:
        # No-op unless a fault plan is active (tests, ``repro faults demo``).
        faults.maybe_inject_worker(key, attempt)
        if checkpoint is not None:
            return execute_trial_checkpointed(
                key, config, checkpoint, attempt=attempt
            )
        return execute_trial(config)

    return capture_trial_record(
        key,
        campaign,
        config_to_dict(config),
        execute,
        result_metrics,
    )


def run_batch_to_records(
    campaign: str,
    items: list[tuple[str, ExperimentConfig]],
    attempt: int = 1,
) -> list[TrialRecord]:
    """Run one replicate batch, returning per-replicate records.

    The batched twin of calling :func:`run_trial_to_record` once per
    ``(key, config)``: the replicates advance together through one
    :class:`~repro.batch.BatchedStepper` (shared workload synthesis,
    shared carbon-trace integral, stacked scoring), and each comes back
    as its *own* content-addressed record whose metrics are byte-identical
    to the sequential run's — the bit-identity contract makes batched and
    sequential store records interchangeable (only ``duration_s``, a
    wall-clock measurement, differs: each record is charged an equal
    share of the batch).

    Failure isolation stays per-replicate: if the batch raises anywhere
    (one replicate's scheduler crashing mid-wave poisons the shared
    pump), every replicate falls back to a solo :func:`run_trial_to_record`
    so healthy batch-mates still produce ``ok`` records and only the bad
    trial records its error.
    """
    from repro.batch import run_batched

    start = time.perf_counter()
    try:
        for key, _ in items:
            faults.maybe_inject_worker(key, attempt)
        results = run_batched([config for _, config in items])
    except Exception:
        return [
            run_trial_to_record(key, campaign, config, attempt=attempt)
            for key, config in items
        ]
    share = (time.perf_counter() - start) / len(items)
    return [
        TrialRecord(
            key=key,
            campaign=campaign,
            config=config_to_dict(config),
            status=STATUS_OK,
            metrics=result_metrics(result),
            duration_s=share,
        )
        for (key, config), result in zip(items, results)
    ]


def _pool_worker_init() -> None:
    """Pool-worker process initializer: restore default signal handling.

    Workers are forked after :meth:`CampaignRunner._signal_handlers` has
    installed the supervisor's SIGINT/SIGTERM handlers, and fork inherits
    them — a worker that kept those handlers would swallow the SIGTERM
    the supervisor sends to reclaim it after a hang. SIGTERM goes back to
    the default (die), and SIGINT is ignored so a terminal Ctrl-C reaches
    only the supervisor, which drains and shuts down deliberately.
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _pool_worker(
    payload: tuple[str, str, dict],
    attempt: int = 1,
    checkpoint: CheckpointPolicy | None = None,
) -> TrialRecord:
    """Top-level (picklable) worker: rebuild the config, run, summarize."""
    key, campaign, config_dict = payload
    return run_trial_to_record(
        key,
        campaign,
        config_from_dict(config_dict),
        attempt=attempt,
        checkpoint=checkpoint,
    )


def _batch_pool_worker(
    payload: tuple[str, list[tuple[str, dict]]],
    attempt: int = 1,
    checkpoint: CheckpointPolicy | None = None,
) -> list[TrialRecord]:
    """Picklable worker for one replicate batch: N records per task.

    ``checkpoint`` is accepted for submit-signature parity but ignored:
    mid-trial checkpointing is a per-stepper affair and a batched group
    is supervised (retried, quarantined) as a unit instead.
    """
    campaign, keyed_dicts = payload
    return run_batch_to_records(
        campaign,
        [(key, config_from_dict(d)) for key, d in keyed_dicts],
        attempt=attempt,
    )


@dataclass
class _TrialState:
    """Supervision bookkeeping for one pending task.

    A task is either one trial key (``group is None``) or one batched
    replicate group — several ``(key, config)`` trials advancing together
    through a :class:`~repro.batch.BatchedStepper`. A group is supervised
    (submitted, timed out, retried, quarantined) as a unit; ``key`` and
    ``config`` then name the group's first trial (backoff seeding,
    labels).
    """

    key: str
    config: Any
    attempt: int = 0  # attempts charged so far (incremented on submit)
    errors: list[str] = field(default_factory=list)
    not_before: float = 0.0  # monotonic time the next attempt may start
    group: list[tuple[str, Any]] | None = None  # batched replicate group

    @property
    def trials(self) -> int:
        return len(self.group) if self.group is not None else 1


@dataclass
class CampaignRun:
    """Everything a finished :meth:`CampaignRunner.run` hands back."""

    spec: CampaignSpec
    records: list[TrialRecord]
    stats: CacheStats = field(default_factory=CacheStats)
    wall_time_s: float = 0.0

    @property
    def failures(self) -> list[TrialRecord]:
        return [r for r in self.records if not r.ok]

    @property
    def ok_records(self) -> list[TrialRecord]:
        return [r for r in self.records if r.ok]


class CampaignRunner:
    """Runs campaigns against one store, with a process pool and caching.

    The resume/record/progress loop is config-type agnostic: subclasses
    (e.g. the federation campaigns in :mod:`repro.campaign.geo`) override
    the ``trial_key_for`` / ``run_record`` / ``payload_for`` / ``label_for``
    hooks and the picklable ``worker`` entry point to sweep a different
    config type through the identical store, cache, and pool machinery.

    Parameters
    ----------
    store:
        Result store consulted for cache hits and appended to as trials
        finish.
    workers:
        Pool size. ``None`` uses the CPU count; ``0``/``1`` runs trials
        inline in this process (no pool — useful for tests and tiny runs).
    code_version:
        Folded into every trial key; defaults to ``repro.__version__``.
    supervisor:
        Resilience policy (timeouts, attempt budget, backoff, checkpoints);
        defaults to :class:`SupervisorConfig`'s defaults — two attempts,
        no timeout, no checkpointing.
    exporter:
        Optional live :class:`~repro.obs.export.MetricsExporter`, sampled
        once per completed trial so a long campaign can be watched from a
        JSONL series or scrape endpoint. Samples are keyed by the
        done-count (campaigns have no simulated clock; elapsed wall
        seconds ride along as the time axis). The caller owns the
        exporter's lifecycle (``close``).
    batch_replicates:
        When > 1, pending trials that differ only in the replicate fields
        (:data:`~repro.campaign.spec.REPLICATE_FIELDS`) are grouped and
        run through one :class:`~repro.batch.BatchedStepper` per group of
        up to this many replicates — one pool task producing one
        content-addressed record *per replicate*, byte-identical to the
        sequential records (see :doc:`docs/batching`). ``1`` (the
        default) disables grouping entirely.
    """

    #: Top-level (picklable) pool entry point taking
    #: ``(payload, attempt, checkpoint_policy)``.
    worker = staticmethod(_pool_worker)
    #: Pool entry point for one batched replicate group; returns a
    #: ``list[TrialRecord]`` (one per replicate).
    batch_worker = staticmethod(_batch_pool_worker)

    def __init__(
        self,
        store: ResultStore,
        workers: int | None = None,
        code_version: str | None = None,
        supervisor: SupervisorConfig | None = None,
        exporter=None,
        batch_replicates: int = 1,
    ) -> None:
        self.store = store
        self.workers = workers
        self.code_version = code_version
        self.supervisor = supervisor if supervisor is not None else SupervisorConfig()
        self.exporter = exporter
        self.batch_replicates = max(1, int(batch_replicates))
        self._stop = threading.Event()

    def request_shutdown(self) -> None:
        """Ask a running campaign to stop gracefully (the signal handlers
        call this; tests can too). Completed futures are drained into the
        store, then :class:`CampaignInterrupted` propagates."""
        self._stop.set()

    # -- config-type hooks (overridden by e.g. GeoCampaignRunner) --------
    def trial_key_for(self, config) -> str:
        return trial_key(config, self.code_version)

    def run_record(
        self, key: str, campaign: str, config, attempt: int = 1
    ) -> TrialRecord:
        """Execute one trial inline, capturing failure as an error record."""
        return run_trial_to_record(
            key,
            campaign,
            config,
            attempt=attempt,
            checkpoint=self.supervisor.checkpoint_policy(),
        )

    def payload_for(self, key: str, campaign: str, config) -> tuple:
        """The picklable payload handed to :attr:`worker`."""
        return (key, campaign, config_to_dict(config))

    def label_for(self, record: TrialRecord) -> str:
        return trial_label(config_from_dict(record.config))

    def replicate_group_key(self, config) -> Any | None:
        """Hashable batch-compatibility key, or ``None`` if unbatchable.

        Trials sharing a key differ only in replicate fields and may run
        through one :class:`~repro.batch.BatchedStepper`. The base
        implementation batches :class:`ExperimentConfig` trials only;
        other config types (e.g. federation) fall back to solo execution.
        """
        if isinstance(config, ExperimentConfig):
            from repro.batch import replicate_signature

            return replicate_signature(config)
        return None

    def batch_payload_for(self, campaign: str, group) -> tuple:
        """The picklable payload handed to :attr:`batch_worker`."""
        return (
            campaign,
            [(key, config_to_dict(config)) for key, config in group],
        )

    def run_batch_records(
        self, campaign: str, group, attempt: int = 1
    ) -> list[TrialRecord]:
        """Execute one replicate group inline (the no-pool path)."""
        return run_batch_to_records(campaign, list(group), attempt=attempt)

    def _partition_batches(
        self, pending: list[tuple[str, Any]]
    ) -> tuple[list[list[tuple[str, Any]]], list[tuple[str, Any]]]:
        """Split pending trials into replicate groups and solo leftovers.

        Trials group by :meth:`replicate_group_key`, chunked to at most
        :attr:`batch_replicates` per group; singleton chunks (and
        unbatchable configs) run solo. Resume interacts *per key* — a
        re-run groups only the trials still missing from the store, so a
        campaign half-finished sequentially finishes batched (and vice
        versa) without re-running anything.
        """
        if self.batch_replicates <= 1:
            return [], list(pending)
        groups: dict[Any, list[tuple[str, Any]]] = {}
        solos: list[tuple[str, Any]] = []
        for key, config in pending:
            group_key = self.replicate_group_key(config)
            if group_key is None:
                solos.append((key, config))
            else:
                groups.setdefault(group_key, []).append((key, config))
        batches: list[list[tuple[str, Any]]] = []
        for items in groups.values():
            for start in range(0, len(items), self.batch_replicates):
                chunk = items[start : start + self.batch_replicates]
                if len(chunk) >= 2:
                    batches.append(chunk)
                else:
                    solos.extend(chunk)
        return batches, solos

    # ------------------------------------------------------------------
    def keyed_trials(self, spec) -> list[tuple[str, Any]]:
        """(key, config) per trial, deduplicated, in campaign order.

        Config values are whatever type the spec expands to —
        :class:`ExperimentConfig` here, ``FederationConfig`` under
        :class:`~repro.campaign.geo.GeoCampaignRunner`.
        """
        seen: dict[str, Any] = {}
        for config in spec.trials():
            seen.setdefault(self.trial_key_for(config), config)
        return list(seen.items())

    def collect(self, spec: CampaignSpec) -> list[TrialRecord]:
        """The spec's stored records only — no execution (``report``).

        Includes keys whose latest record is a *failure* (with attempt
        history), so report callers can distinguish "never ran" (absent)
        from "ran and failed" — aggregators like
        :func:`~repro.campaign.reports.campaign_report` filter to ``ok``
        themselves.
        """
        return self.store.latest([key for key, _ in self.keyed_trials(spec)])

    def run(
        self,
        spec: CampaignSpec,
        resume: bool = True,
        on_progress: ProgressCallback | None = None,
    ) -> CampaignRun:
        """Execute every trial of ``spec`` not already in the store.

        Trials are deduplicated by content-addressed key (config hash ×
        code version), stored records are reused when ``resume`` is true
        (so re-runs and overlapping sweeps cost nothing), and the rest
        fan out across the process pool with failure isolation — one
        crashing trial is recorded with its traceback and excluded from
        the cache, never killing the campaign. ``on_progress`` receives
        ``(done, total, label)`` per completed trial. Returns a
        :class:`CampaignRun` with per-trial records and cache stats;
        aggregate tables come from :mod:`repro.campaign.reports` using
        the store alone.
        """
        started = time.perf_counter()
        observer = _current_observer()
        span_start = observer.tracer.now_us() if observer is not None else 0.0
        keyed = self.keyed_trials(spec)
        completed = self.store.completed() if resume else {}

        records: dict[str, TrialRecord] = {}
        pending: list[tuple[str, ExperimentConfig]] = []
        for key, config in keyed:
            if key in completed:
                records[key] = completed[key]
            else:
                pending.append((key, config))
        stats = CacheStats(hits=len(records), misses=len(pending))

        if observer is not None:
            registry = observer.registry
            tracer = observer.tracer
        elif self.exporter is not None:
            # No observer, but a live exporter wants samples: give the
            # campaign counters a runner-local registry to land in.
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
            tracer = None
        else:
            registry = tracer = None
        if registry is not None:
            registry.counter("campaign.store.hits").inc(stats.hits)
            registry.counter("campaign.store.misses").inc(stats.misses)
            obs_ok = registry.counter("campaign.trials.ok")
            obs_failed = registry.counter("campaign.trials.failed")
        else:
            obs_ok = obs_failed = None

        total = len(keyed)
        done = 0
        for key in records:
            done += 1
            if on_progress is not None:
                on_progress(
                    done, total, f"cached {self.label_for(records[key])}"
                )

        def finish(record: TrialRecord) -> None:
            nonlocal done
            self.store.append(record)
            records[record.key] = record
            done += 1
            if tracer is not None:
                dur_us = record.duration_s * 1e6
                tracer.complete(
                    f"trial {self.label_for(record)}",
                    start_us=max(0.0, tracer.now_us() - dur_us),
                    dur_us=dur_us,
                    cat="campaign",
                    key=record.key[:12],
                    ok=record.ok,
                )
            if obs_ok is not None:
                (obs_ok if record.ok else obs_failed).inc()
            if self.exporter is not None and registry is not None:
                self.exporter.export(
                    done, time.perf_counter() - started, registry
                )
            if on_progress is not None:
                verb = "ok   " if record.ok else "FAIL "
                label = self.label_for(record)
                on_progress(done, total, f"{verb}{label} ({record.duration_s:.2f}s)")

        workers = self._effective_workers(len(pending))
        self._stop.clear()
        with self._signal_handlers():
            if workers <= 1:
                self._run_inline(pending, spec.name, finish)
            elif pending:
                self._run_pool(pending, spec.name, workers, finish)

        ordered = [records[key] for key, _ in keyed if key in records]
        wall_time_s = time.perf_counter() - started
        if registry is not None:
            registry.gauge("campaign.workers").set(workers)
            executed = [records[key] for key, _ in pending if key in records]
            if executed and wall_time_s > 0:
                busy = sum(r.duration_s for r in executed)
                registry.gauge("campaign.worker_utilization").set(
                    min(1.0, busy / (wall_time_s * max(1, workers)))
                )
        if observer is not None:
            observer.tracer.complete(
                f"campaign {spec.name}",
                start_us=span_start,
                dur_us=observer.tracer.now_us() - span_start,
                cat="campaign",
                trials=total,
                cache_hits=stats.hits,
                executed=len(pending),
            )
        return CampaignRun(
            spec=spec,
            records=ordered,
            stats=stats,
            wall_time_s=wall_time_s,
        )

    def _effective_workers(self, pending: int) -> int:
        if self.workers is not None:
            return max(0, self.workers)
        return min(os.cpu_count() or 1, max(pending, 1))

    # -- supervision ------------------------------------------------------
    @staticmethod
    def _count(name: str, n: int = 1) -> None:
        observer = _current_observer()
        if observer is not None:
            observer.registry.counter(name).inc(n)

    @contextmanager
    def _signal_handlers(self) -> Iterator[None]:
        """Convert SIGINT/SIGTERM into a graceful stop for the duration of
        one run. Only installable from the main thread; elsewhere (e.g. a
        runner driven from a worker thread) the caller uses
        :meth:`request_shutdown` directly."""
        if threading.current_thread() is not threading.main_thread():
            yield
            return
        previous: dict[int, Any] = {}

        def handler(signum, frame) -> None:  # noqa: ANN001 — signal API
            self._stop.set()

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, handler)
            except (ValueError, OSError):  # non-main interpreter contexts
                pass
        try:
            yield
        finally:
            for sig, prev in previous.items():
                signal.signal(sig, prev)

    def _stamp(self, record: TrialRecord, state: _TrialState) -> TrialRecord:
        """Fold the supervisor's attempt history into the final record."""
        return replace(
            record,
            attempts=max(1, state.attempt),
            attempt_errors=list(state.errors) or None,
        )

    def _quarantine_record(self, state: _TrialState, campaign: str) -> TrialRecord:
        """The failed record written when a key exhausts its attempt budget
        without its worker ever returning one (crash/hang paths)."""
        return TrialRecord(
            key=state.key,
            campaign=campaign,
            config=self.payload_for(state.key, campaign, state.config)[2],
            status=STATUS_ERROR,
            error=state.errors[-1] if state.errors else "quarantined",
            attempts=state.attempt,
            attempt_errors=list(state.errors),
        )

    def _run_inline(
        self,
        pending: list[tuple[str, Any]],
        campaign: str,
        finish: Callable[[TrialRecord], None],
    ) -> None:
        """No-pool path: retries and quarantine apply, timeouts cannot (a
        hung trial would hang this very process).

        Replicate groups run first, one batched attempt each; replicates
        whose batched record failed rejoin the solo queue (carrying the
        attempt already charged) and retry individually — the bit-identity
        contract makes a solo retry reproduce exactly what an in-batch
        retry would.
        """
        sup = self.supervisor
        batches, solos = self._partition_batches(pending)
        remaining = len(pending)

        def check_stop() -> None:
            if self._stop.is_set():
                raise CampaignInterrupted(
                    completed=len(pending) - remaining, pending=remaining
                )

        retries: list[_TrialState] = []
        for group in batches:
            check_stop()
            records = self.run_batch_records(campaign, group, attempt=1)
            for record, (key, config) in zip(records, group):
                if record.ok:
                    remaining -= 1
                    finish(record)
                else:
                    retries.append(
                        _TrialState(
                            key=key,
                            config=config,
                            attempt=1,
                            errors=[record.error or "trial failed"],
                        )
                    )

        states = retries + [
            _TrialState(key=key, config=config) for key, config in solos
        ]
        for state in states:
            check_stop()
            record = None
            while state.attempt < sup.max_attempts:
                if state.errors:  # a previous attempt failed: back off
                    self._count("campaign.retries")
                    time.sleep(backoff_delay(sup, state.key, state.attempt))
                state.attempt += 1
                record = self.run_record(
                    state.key, campaign, state.config, attempt=state.attempt
                )
                if record.ok:
                    break
                state.errors.append(record.error or "trial failed")
                if self._stop.is_set():
                    break
            if record is None:  # batched attempt exhausted the budget
                record = self._quarantine_record(state, campaign)
            if not record.ok and state.attempt >= sup.max_attempts:
                self._count("campaign.quarantines")
            remaining -= 1
            finish(self._stamp(record, state))

    def _run_pool(
        self,
        pending: list[tuple[str, Any]],
        campaign: str,
        workers: int,
        finish: Callable[[TrialRecord], None],
    ) -> None:
        """The supervised pool loop: submit, watch deadlines, retry with
        seeded backoff, quarantine on budget exhaustion, rebuild broken
        pools, and drain completed futures on shutdown."""
        sup = self.supervisor
        checkpoint = sup.checkpoint_policy()
        pool = ProcessPoolExecutor(
            max_workers=workers, initializer=_pool_worker_init
        )
        in_flight: dict[Future, tuple[_TrialState, float | None]] = {}
        batches, solos = self._partition_batches(pending)
        waiting = [
            _TrialState(key=group[0][0], config=group[0][1], group=group)
            for group in batches
        ] + [_TrialState(key=key, config=config) for key, config in solos]
        concluded = 0

        def submit(state: _TrialState) -> None:
            state.attempt += 1
            if state.group is not None:
                payload = self.batch_payload_for(campaign, state.group)
                future = pool.submit(
                    self.batch_worker, payload, state.attempt, checkpoint
                )
            else:
                payload = self.payload_for(state.key, campaign, state.config)
                future = pool.submit(
                    self.worker, payload, state.attempt, checkpoint
                )
            deadline = (
                time.monotonic() + sup.trial_timeout_s
                if sup.trial_timeout_s is not None
                else None
            )
            in_flight[future] = (state, deadline)

        def conclude(state: _TrialState, record: TrialRecord) -> None:
            nonlocal concluded
            concluded += 1
            finish(self._stamp(record, state))

        def conclude_batch(state: _TrialState, records) -> None:
            """Bank a returned batch: ok records conclude per replicate;
            failed replicates rejoin the queue as *solo* states (carrying
            the group's attempt history) so their retries go through the
            ordinary supervision path — bit-identity makes the solo rerun
            equivalent to an in-batch one."""
            nonlocal concluded
            for record, (key, config) in zip(records, state.group):
                if record.ok:
                    concluded += 1
                    finish(self._stamp(record, state))
                else:
                    handle_failure(
                        _TrialState(
                            key=key,
                            config=config,
                            attempt=state.attempt,
                            errors=list(state.errors),
                        ),
                        record.error or "trial failed",
                    )

        def handle_failure(
            state: _TrialState, message: str, timed_out: bool = False
        ) -> None:
            nonlocal concluded
            state.errors.append(message)
            if timed_out:
                self._count("campaign.timeouts")
            if state.attempt >= sup.max_attempts:
                self._count("campaign.quarantines", state.trials)
                concluded += state.trials
                for key, config in state.group or [(state.key, state.config)]:
                    finish(
                        self._quarantine_record(
                            replace(state, key=key, config=config, group=None),
                            campaign,
                        )
                    )
            else:
                self._count("campaign.retries")
                state.not_before = time.monotonic() + backoff_delay(
                    sup, state.key, state.attempt
                )
                waiting.append(state)  # a group retries as a unit

        def rebuild_pool() -> None:
            """Replace a broken/hung pool; resubmit surviving in-flight
            trials on the fresh one without charging them an attempt."""
            nonlocal pool
            self._count("campaign.pool_rebuilds")
            # shutdown() alone never reclaims a hung worker — terminate
            # the processes explicitly (private attr, guarded: worst case
            # a leaked worker, not a crash).
            process_map = getattr(pool, "_processes", None)
            processes = list(process_map.values()) if process_map else []
            pool.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                try:
                    if process.is_alive():
                        process.kill()  # SIGKILL: a hung worker may be
                        # deep in C code or sleeping through SIGTERM
                except Exception:  # pragma: no cover — best-effort reclaim
                    pass
            pool = ProcessPoolExecutor(
                max_workers=workers, initializer=_pool_worker_init
            )
            survivors = [state for state, _ in in_flight.values()]
            in_flight.clear()
            for state in survivors:
                state.attempt -= 1  # submit() re-charges; net zero
                submit(state)

        def drain_completed() -> None:
            """Shutdown path: bank every future that already finished."""
            for future, (state, _) in list(in_flight.items()):
                if not future.done():
                    continue
                del in_flight[future]
                try:
                    record = future.result()
                except Exception:
                    continue  # failed mid-shutdown: resume will retry it
                if state.group is not None:
                    for rec in record:
                        if rec.ok:
                            conclude(state, rec)
                elif record.ok:
                    conclude(state, record)

        try:
            while waiting or in_flight:
                if self._stop.is_set():
                    drain_completed()
                    raise CampaignInterrupted(
                        completed=concluded,
                        pending=sum(s.trials for s in waiting)
                        + sum(s.trials for s, _ in in_flight.values()),
                    )
                now = time.monotonic()
                ready = [s for s in waiting if s.not_before <= now]
                waiting = [s for s in waiting if s.not_before > now]
                for position, state in enumerate(ready):
                    try:
                        submit(state)
                    except BrokenProcessPool:
                        # The pool died between iterations (a worker crash
                        # is only surfaced on the next interaction). Undo
                        # the charge, requeue everything still unlaunched,
                        # and rebuild.
                        state.attempt -= 1
                        waiting.extend(ready[position:])
                        rebuild_pool()
                        break
                if not in_flight:
                    # Everything is backing off; nap until the earliest
                    # retry (capped so stop stays responsive).
                    earliest = min(s.not_before for s in waiting)
                    time.sleep(min(0.05, max(0.0, earliest - now)))
                    continue
                done, _ = futures_wait(
                    set(in_flight), timeout=0.1, return_when=FIRST_COMPLETED
                )
                broken = False
                for future in done:
                    state, _deadline = in_flight.pop(future)
                    try:
                        record = future.result()
                    except BrokenProcessPool:
                        broken = True
                        handle_failure(
                            state,
                            "worker process died before returning a record "
                            "(BrokenProcessPool)",
                        )
                    except Exception as exc:
                        handle_failure(state, f"{type(exc).__name__}: {exc}")
                    else:
                        if state.group is not None:
                            conclude_batch(state, record)
                        elif record.ok:
                            conclude(state, record)
                        else:
                            handle_failure(state, record.error or "trial failed")
                now = time.monotonic()
                expired = [
                    (future, state)
                    for future, (state, deadline) in in_flight.items()
                    if deadline is not None and now >= deadline
                ]
                for future, state in expired:
                    del in_flight[future]
                    handle_failure(
                        state,
                        f"trial exceeded {sup.trial_timeout_s:.6g}s wall-clock "
                        "timeout; worker presumed hung",
                        timed_out=True,
                    )
                if broken or expired:
                    rebuild_pool()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


def run_matchup_trials(
    scheduler_names: Iterable[str],
    config: ExperimentConfig,
    carbon_trace: CarbonTrace | None = None,
) -> dict[str, ExperimentResult]:
    """In-process matchup through the campaign layer, full results returned.

    Backs :func:`repro.experiments.runner.run_matchup`: expands a
    :func:`~repro.campaign.spec.matchup_spec` and runs every trial inline,
    sharing one carbon trace object so all schedulers see the identical
    slice without re-synthesis.
    """
    from repro.campaign.spec import matchup_spec
    from repro.experiments.runner import carbon_trace_for

    trace = carbon_trace if carbon_trace is not None else carbon_trace_for(config)
    spec = matchup_spec(scheduler_names, config)
    return {
        trial.scheduler: execute_trial(trial, carbon_trace=trace)
        for trial in spec.trials()
    }
