"""Content-addressed trial keys.

A trial's identity is the SHA-256 of its fully-resolved config plus the code
version: identical configs hash identically regardless of which campaign
named them, so overlapping sweeps share work, while any config or code
change produces a fresh key and forces a re-run.

The key is what makes re-running a campaign free — the executor skips every
trial whose key already has an ``ok`` record in the store. This relies on
experiments being deterministic functions of their config (seeded workload
generation, seeded schedulers, synthesized traces), a property the test
suite pins down.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any

import repro
from repro import __version__
from repro.campaign.spec import config_to_dict
from repro.experiments.runner import ExperimentConfig

#: Length of the hex digest prefix used as the key; 16 hex chars = 64 bits,
#: far beyond collision range for any realistic campaign size.
KEY_LENGTH = 16


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Version + digest of the package source, e.g. ``1.0.0+3f9a2c41b07d``.

    Hashing every ``repro`` source file (not just ``__version__``) means any
    code edit — even without a version bump — changes every trial key, so a
    persistent store can never silently serve results computed by older
    code. Computed once per process (~milliseconds).
    """
    package_root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(path.read_bytes())
    return f"{__version__}+{digest.hexdigest()[:12]}"


def trial_key(config: ExperimentConfig, code_version: str | None = None) -> str:
    """Content-addressed identity of one trial."""
    payload = {
        "code_version": (
            code_version if code_version is not None else code_fingerprint()
        ),
        "config": config_to_dict(config),
    }
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()[:KEY_LENGTH]


@dataclass
class CacheStats:
    """Hit/miss bookkeeping for one campaign run."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0
