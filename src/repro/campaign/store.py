"""Append-only JSONL result store.

Each completed (or failed) trial is one JSON line holding the trial key, the
campaign that requested it, the fully-resolved config, and a metric summary
of the :class:`~repro.simulator.metrics.ExperimentResult`. Appending is the
only write operation, so a crashed campaign leaves a valid store and
resuming is just "skip keys that already have an ``ok`` record".

:class:`TrialRecord` deliberately exposes ``scheduler_name``,
``carbon_footprint``, ``ect`` and ``avg_jct`` with the same meaning as
:class:`~repro.simulator.metrics.ExperimentResult`, so
:func:`~repro.simulator.metrics.compare_to_baseline` accepts stored records
directly — reports never need to re-run a simulation.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.simulator.metrics import ExperimentResult

STATUS_OK = "ok"
STATUS_ERROR = "error"


def result_metrics(result: ExperimentResult) -> dict[str, Any]:
    """The summary serialized for one successful trial."""
    return {
        "carbon_footprint": result.carbon_footprint,
        "ect": result.ect,
        "avg_jct": result.avg_jct,
        "num_jobs": result.num_jobs,
        "total_busy_time": result.total_busy_time,
        "utilization": result.utilization(),
        "scheduler_time_s": result.scheduler_time_s,
        "scheduler_invocations": result.scheduler_invocations,
        "avg_scheduler_latency_s": result.avg_scheduler_latency_s,
    }


@dataclass(frozen=True)
class TrialRecord:
    """One stored trial: key + config + outcome."""

    key: str
    campaign: str
    config: dict[str, Any]
    status: str
    metrics: dict[str, Any] | None = None
    error: str | None = None
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    # -- ExperimentResult-compatible views (for compare_to_baseline) -----
    @property
    def scheduler_name(self) -> str:
        return self.config["scheduler"]

    @property
    def carbon_footprint(self) -> float:
        return self._metric("carbon_footprint")

    @property
    def ect(self) -> float:
        return self._metric("ect")

    @property
    def avg_jct(self) -> float:
        return self._metric("avg_jct")

    def _metric(self, name: str) -> float:
        if self.metrics is None:
            raise ValueError(f"trial {self.key} has no metrics (status={self.status})")
        return float(self.metrics[name])

    @classmethod
    def from_json(cls, line: str) -> "TrialRecord":
        data = json.loads(line)
        return cls(**{k: data[k] for k in cls.__dataclass_fields__ if k in data})

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


class ResultStore:
    """Append-only JSONL store of :class:`TrialRecord` lines.

    Later records for a key supersede earlier ones (e.g. a failed trial
    re-run to success), so loading dedupes by key keeping the last line.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def __len__(self) -> int:
        return len(self.records())

    def append(self, record: TrialRecord) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(record.to_json() + "\n")

    def records(self, campaign: str | None = None) -> list[TrialRecord]:
        """All stored records, deduped by key (last write wins)."""
        if not self.path.exists():
            return []
        by_key: dict[str, TrialRecord] = {}
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = TrialRecord.from_json(line)
                by_key[record.key] = record
        records = list(by_key.values())
        if campaign is not None:
            records = [r for r in records if r.campaign == campaign]
        return records

    def completed(self) -> dict[str, TrialRecord]:
        """Successful records by key — the resume/cache lookup table.

        Lookup is content-addressed and deliberately ignores the campaign
        name: overlapping sweeps share trials.
        """
        return {r.key: r for r in self.records() if r.ok}

    def select(self, keys: Iterable[str]) -> list[TrialRecord]:
        """Stored records for the given trial keys, in the given order."""
        completed = self.completed()
        return [completed[k] for k in keys if k in completed]
