"""Append-only JSONL result store.

Each completed (or failed) trial is one JSON line holding the trial key, the
campaign that requested it, the fully-resolved config, and a metric summary
of the :class:`~repro.simulator.metrics.ExperimentResult`. Appending is the
only write operation, so a crashed campaign leaves a valid store and
resuming is just "skip keys that already have an ``ok`` record".

Crash safety is two-sided:

- **writes** are atomic at line granularity: :meth:`ResultStore.append`
  serializes the full line first and hands it to the OS as a single
  ``write`` call followed by a flush, so a process killed mid-append can
  truncate at most its own trailing line, never interleave with another
  worker's line;
- **reads** are lenient: :meth:`ResultStore.records` skips lines that do
  not parse as complete records (the truncated tail of a killed process, a
  disk-full torso) while counting them, so one torn line never poisons
  resume for the rest of the store. :meth:`ResultStore.verify` reports
  store health and :meth:`ResultStore.repair` rewrites a clean store
  (keeping a ``.bak`` of the original) — surfaced as
  ``repro campaign verify``.

:class:`TrialRecord` deliberately exposes ``scheduler_name``,
``carbon_footprint``, ``ect`` and ``avg_jct`` with the same meaning as
:class:`~repro.simulator.metrics.ExperimentResult`, so
:func:`~repro.simulator.metrics.compare_to_baseline` accepts stored records
directly — reports never need to re-run a simulation.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.ioutil import atomic_write_text
from repro.obs.observer import current as _current_observer
from repro.simulator.metrics import ExperimentResult

STATUS_OK = "ok"
STATUS_ERROR = "error"


def result_metrics(result: ExperimentResult) -> dict[str, Any]:
    """The summary serialized for one successful trial."""
    return {
        "carbon_footprint": result.carbon_footprint,
        "ect": result.ect,
        "avg_jct": result.avg_jct,
        "num_jobs": result.num_jobs,
        "total_busy_time": result.total_busy_time,
        "utilization": result.utilization(),
        "scheduler_time_s": result.scheduler_time_s,
        "scheduler_invocations": result.scheduler_invocations,
        "avg_scheduler_latency_s": result.avg_scheduler_latency_s,
    }


@dataclass(frozen=True)
class TrialRecord:
    """One stored trial: key + config + outcome.

    ``attempts`` counts executions the supervisor charged to this trial
    before the recorded outcome (1 for a first-try success);
    ``attempt_errors`` keeps the per-attempt failure summaries so flaky
    trials stay diagnosable from the store alone.
    """

    key: str
    campaign: str
    config: dict[str, Any]
    status: str
    metrics: dict[str, Any] | None = None
    error: str | None = None
    duration_s: float = 0.0
    attempts: int = 1
    attempt_errors: list[str] | None = None

    @property
    def ok(self) -> bool:
        """Successful *and usable*: an ``ok`` status with no metrics (a
        hand-edited or torn-and-glued store line) must not be served as a
        resume cache hit — it would permanently mask the trial while
        crashing every aggregation that reads its metrics."""
        return self.status == STATUS_OK and self.metrics is not None

    # -- ExperimentResult-compatible views (for compare_to_baseline) -----
    @property
    def scheduler_name(self) -> str:
        return self.config["scheduler"]

    @property
    def carbon_footprint(self) -> float:
        return self._metric("carbon_footprint")

    @property
    def ect(self) -> float:
        return self._metric("ect")

    @property
    def avg_jct(self) -> float:
        return self._metric("avg_jct")

    def _metric(self, name: str) -> float:
        if self.metrics is None:
            raise ValueError(f"trial {self.key} has no metrics (status={self.status})")
        return float(self.metrics[name])

    @classmethod
    def from_json(cls, line: str) -> "TrialRecord":
        data = json.loads(line)
        return cls(**{k: data[k] for k in cls.__dataclass_fields__ if k in data})

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


#: Fields a stored line must carry to count as a valid record. Older stores
#: (pre-``attempts``) remain readable because the newer fields default.
_REQUIRED_FIELDS = ("key", "campaign", "config", "status")


@dataclass
class StoreCheck:
    """What :meth:`ResultStore.verify` found in one pass over the file."""

    path: Path
    total_lines: int = 0
    valid_records: int = 0
    corrupt_lines: list[int] = field(default_factory=list)  # 1-based
    unique_keys: int = 0
    superseded: int = 0  # valid lines shadowed by a later same-key line
    ok_records: int = 0
    failed_records: int = 0

    @property
    def clean(self) -> bool:
        return not self.corrupt_lines

    def summary(self) -> str:
        state = "clean" if self.clean else f"{len(self.corrupt_lines)} corrupt line(s)"
        return (
            f"{self.path}: {state} — {self.valid_records} valid record(s) on "
            f"{self.total_lines} line(s), {self.unique_keys} unique key(s) "
            f"({self.ok_records} ok / {self.failed_records} failed, "
            f"{self.superseded} superseded)"
        )


class ResultStore:
    """Append-only JSONL store of :class:`TrialRecord` lines.

    Later records for a key supersede earlier ones (e.g. a failed trial
    re-run to success), so loading dedupes by key keeping the last line.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        #: Corrupt lines skipped by the most recent read (diagnostics).
        self.last_corrupt_count = 0

    def __len__(self) -> int:
        return len(self.records())

    def append(self, record: TrialRecord) -> None:
        """Append one record as a single atomic line write.

        The full line (payload + newline) is serialized before the file is
        touched and handed to the OS in one ``write`` call, then flushed —
        a worker killed mid-append can only ever leave a truncated *tail*,
        which the lenient reader skips. If the existing tail is such a
        torn fragment (no trailing newline), a newline is prepended first
        so the new record never glues onto the residue.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = record.to_json() + "\n"
        if self._tail_is_torn():
            line = "\n" + line
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()

    def _tail_is_torn(self) -> bool:
        """True when the file ends mid-line — the residue of a killed
        writer — so the next append must start on a fresh line."""
        try:
            with self.path.open("rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except (FileNotFoundError, OSError):  # missing or empty file
            return False

    def _scan(self) -> tuple[list[tuple[int, TrialRecord]], list[int]]:
        """Every parseable record with its 1-based line number, plus the
        line numbers that failed to parse as complete records."""
        parsed: list[tuple[int, TrialRecord]] = []
        corrupt: list[int] = []
        if not self.path.exists():
            return parsed, corrupt
        with self.path.open("r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    data = json.loads(stripped)
                    if not isinstance(data, dict) or any(
                        name not in data for name in _REQUIRED_FIELDS
                    ):
                        raise ValueError("not a trial record")
                    record = TrialRecord(
                        **{
                            k: data[k]
                            for k in TrialRecord.__dataclass_fields__
                            if k in data
                        }
                    )
                except (ValueError, TypeError):
                    corrupt.append(number)
                    continue
                parsed.append((number, record))
        self.last_corrupt_count = len(corrupt)
        if corrupt:
            observer = _current_observer()
            if observer is not None:
                observer.registry.counter(
                    "store.corrupt_lines_skipped"
                ).inc(len(corrupt))
        return parsed, corrupt

    def records(self, campaign: str | None = None) -> list[TrialRecord]:
        """All stored records, deduped by key (last write wins).

        Lenient by design: lines that do not parse as complete records —
        the truncated tail of a killed worker, a torn mid-file write — are
        skipped and counted (:attr:`last_corrupt_count`, plus the
        ``store.corrupt_lines_skipped`` obs counter) instead of raising,
        so one bad line never blocks resume for the whole store.
        """
        parsed, _ = self._scan()
        by_key: dict[str, TrialRecord] = {}
        for _, record in parsed:
            by_key[record.key] = record
        records = list(by_key.values())
        if campaign is not None:
            records = [r for r in records if r.campaign == campaign]
        return records

    def completed(self) -> dict[str, TrialRecord]:
        """Successful records by key — the resume/cache lookup table.

        Lookup is content-addressed and deliberately ignores the campaign
        name: overlapping sweeps share trials.
        """
        return {r.key: r for r in self.records() if r.ok}

    def latest(self, keys: Iterable[str]) -> list[TrialRecord]:
        """The latest stored record per key — ok *or* failed — in order.

        The failure-aware companion to :meth:`select`: callers that need
        to distinguish "never ran" (absent) from "ran and failed" (present
        with ``ok == False``) read this; keys with no record at all are
        omitted.
        """
        by_key = {r.key: r for r in self.records()}
        return [by_key[k] for k in keys if k in by_key]

    def select(self, keys: Iterable[str]) -> list[TrialRecord]:
        """Successful stored records for the given trial keys, in order.

        Keys whose latest record is a *failure* are dropped here (this is
        the cache-lookup view); use :meth:`latest` when failed outcomes
        must stay visible.
        """
        completed = self.completed()
        return [completed[k] for k in keys if k in completed]

    # -- health -----------------------------------------------------------
    def verify(self) -> StoreCheck:
        """One read-only pass: line counts, corrupt lines, key statistics."""
        parsed, corrupt = self._scan()
        total_lines = 0
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as handle:
                total_lines = sum(1 for line in handle if line.strip())
        by_key: dict[str, TrialRecord] = {}
        for _, record in parsed:
            by_key[record.key] = record
        return StoreCheck(
            path=self.path,
            total_lines=total_lines,
            valid_records=len(parsed),
            corrupt_lines=corrupt,
            unique_keys=len(by_key),
            superseded=len(parsed) - len(by_key),
            ok_records=sum(1 for r in by_key.values() if r.ok),
            failed_records=sum(1 for r in by_key.values() if not r.ok),
        )

    def repair(self, backup_suffix: str = ".bak") -> StoreCheck:
        """Rewrite the store keeping only valid lines; original kept as
        ``<path><backup_suffix>``.

        Valid lines are preserved verbatim in order (including superseded
        duplicates — the append-only history stays intact); only corrupt
        lines are dropped. The rewrite is atomic (temp + rename) and the
        backup is written first, so every intermediate crash state still
        holds a complete copy of the original bytes. Returns the
        :class:`StoreCheck` describing what was repaired.
        """
        check = self.verify()
        if not self.path.exists() or check.clean:
            return check
        parsed, _ = self._scan()
        valid_numbers = {number for number, _ in parsed}
        kept: list[str] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                if number in valid_numbers:
                    kept.append(line.strip() + "\n")
        backup = self.path.with_name(self.path.name + backup_suffix)
        backup.write_bytes(self.path.read_bytes())
        atomic_write_text(self.path, "".join(kept))
        return check
