"""Declarative campaign specifications.

A :class:`CampaignSpec` is "a base :class:`ExperimentConfig` plus axes":
each axis names a config field and the values to sweep, and the campaign is
the cartesian product of all axes applied to the base. Axis names may be
dotted (``workload.num_jobs``) to sweep nested :class:`WorkloadSpec` fields.

If the spec names a ``baseline`` scheduler that no product trial covers, one
baseline trial is prepended per replicate combination (every axis except the
scheduler-policy fields), so normalized reports can be computed from the
result store alone.

:func:`campaign_presets` provides named specs for the paper's Table 2/3 and
Fig. 7–19 campaigns at laptop scale (Fig. 15 is a timeline comparison, not a
sweep, and has no campaign preset).
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping

from repro.carbon.grids import GRID_CODES
from repro.experiments.runner import ExperimentConfig
from repro.workloads.alibaba import AlibabaWorkloadModel
from repro.workloads.batch import WorkloadSpec

#: Config fields that define *which policy* runs rather than *what it runs
#: on*. Two trials that differ only in these fields share a replicate (same
#: workload, grid, and trace slice), which is what makes their normalized
#: comparison meaningful.
POLICY_FIELDS: tuple[str, ...] = ("scheduler", "gamma", "cap_min_quota", "gh_theta")

#: Config fields that vary replicates of the same cell (averaged over in
#: reports rather than broken out as table rows).
REPLICATE_FIELDS: tuple[str, ...] = ("seed", "trace_start_step")

Axes = Mapping[str, Iterable[Any]] | Iterable[tuple[str, Iterable[Any]]]


def apply_axis_value(
    config: ExperimentConfig, field_name: str, value: Any
) -> ExperimentConfig:
    """Return ``config`` with one (possibly dotted) field replaced."""
    if field_name.startswith("workload."):
        sub = field_name.split(".", 1)[1]
        return replace(config, workload=replace(config.workload, **{sub: value}))
    return replace(config, **{field_name: value})


def config_to_dict(config: ExperimentConfig) -> dict[str, Any]:
    """Serialize a config (and its nested workload) to plain JSON types."""
    raw = dataclasses.asdict(config)

    def _plain(obj: Any) -> Any:
        if isinstance(obj, dict):
            return {k: _plain(v) for k, v in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [_plain(v) for v in obj]
        return obj

    return _plain(raw)


def config_from_dict(data: Mapping[str, Any]) -> ExperimentConfig:
    """Rebuild an :class:`ExperimentConfig` from :func:`config_to_dict`."""
    params = dict(data)
    workload = dict(params.get("workload", {}))
    if isinstance(workload.get("alibaba_model"), Mapping):
        workload["alibaba_model"] = AlibabaWorkloadModel(**workload["alibaba_model"])
    if "tpch_scales" in workload:
        workload["tpch_scales"] = tuple(workload["tpch_scales"])
    params["workload"] = WorkloadSpec(**workload)
    return ExperimentConfig(**params)


@dataclass(frozen=True)
class CampaignSpec:
    """A named cartesian sweep over experiment-config fields.

    Parameters
    ----------
    name:
        Campaign identifier (used in store records and the CLI).
    base:
        The config every trial starts from.
    axes:
        Mapping (or ordered pairs) of field name -> values to sweep. Dotted
        ``workload.*`` names reach into the nested :class:`WorkloadSpec`.
    baseline:
        Scheduler every report row is normalized against. If none of the
        product trials run it, baseline trials are added per replicate.
    description:
        One line shown by ``repro campaign list``.
    """

    name: str
    base: ExperimentConfig
    axes: tuple[tuple[str, tuple[Any, ...]], ...]
    baseline: str | None = None
    description: str = ""

    def __init__(
        self,
        name: str,
        base: ExperimentConfig,
        axes: Axes,
        baseline: str | None = None,
        description: str = "",
    ) -> None:
        pairs = axes.items() if isinstance(axes, Mapping) else axes
        normalized = tuple((str(k), tuple(v)) for k, v in pairs)
        for field_name, values in normalized:
            if not values:
                raise ValueError(f"axis {field_name!r} has no values")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "axes", normalized)
        object.__setattr__(self, "baseline", baseline)
        object.__setattr__(self, "description", description)

    # ------------------------------------------------------------------
    def num_trials(self) -> int:
        return len(self.trials())

    def axis_summary(self) -> str:
        """``scheduler×4 · grid×2 · seed×3`` — for listings and banners."""
        return " · ".join(f"{name}×{len(values)}" for name, values in self.axes)

    def trials(self) -> list[ExperimentConfig]:
        """Expand the spec into concrete, deduplicated trial configs.

        Baseline trials (when needed) come first so a campaign's progress
        stream starts with the rows everything else is normalized against.
        """
        product_trials = []
        names = [name for name, _ in self.axes]
        for combo in itertools.product(*(values for _, values in self.axes)):
            config = self.base
            for field_name, value in zip(names, combo):
                config = apply_axis_value(config, field_name, value)
            product_trials.append(config)

        configs: list[ExperimentConfig] = []
        if self.baseline is not None and not any(
            c.scheduler == self.baseline for c in product_trials
        ):
            replicate_axes = [
                (name, values)
                for name, values in self.axes
                if name not in POLICY_FIELDS
            ]
            rep_names = [name for name, _ in replicate_axes]
            for combo in itertools.product(
                *(values for _, values in replicate_axes)
            ):
                config = self.base
                for field_name, value in zip(rep_names, combo):
                    config = apply_axis_value(config, field_name, value)
                configs.append(replace(config, scheduler=self.baseline))
        configs.extend(product_trials)
        return list(dict.fromkeys(configs))

    def scaled(
        self, num_jobs: int | None = None, num_executors: int | None = None
    ) -> "CampaignSpec":
        """A copy with the base workload/cluster resized (CLI overrides)."""
        base = self.base
        if num_jobs is not None:
            base = replace(base, workload=replace(base.workload, num_jobs=num_jobs))
        if num_executors is not None:
            base = replace(
                base,
                num_executors=num_executors,
                per_job_cap=max(2, num_executors // 4),
            )
        return CampaignSpec(
            name=self.name,
            base=base,
            axes=self.axes,
            baseline=self.baseline,
            description=self.description,
        )


def matchup_spec(
    scheduler_names: Iterable[str],
    config: ExperimentConfig,
    name: str = "matchup",
) -> CampaignSpec:
    """The simplest campaign: several schedulers on one identical setup.

    This is what :func:`repro.experiments.runner.run_matchup` expands to.
    """
    return CampaignSpec(
        name=name,
        base=config,
        axes={"scheduler": tuple(scheduler_names)},
        description="one workload, several schedulers",
    )


# ----------------------------------------------------------------------
# Named presets for the paper's campaigns (laptop scale)
# ----------------------------------------------------------------------
def campaign_presets() -> dict[str, CampaignSpec]:
    """Named campaign specs mirroring the paper's tables and sweeps."""
    def tpch(jobs: int, ia: float = 30.0, scales=(2, 10, 50)) -> WorkloadSpec:
        return WorkloadSpec(
            family="tpch", num_jobs=jobs, mean_interarrival=ia, tpch_scales=scales
        )
    prototype = ExperimentConfig(
        mode="kubernetes",
        num_executors=40,
        per_job_cap=10,
        workload=tpch(25, ia=45.0),
        seed=5,
    )
    simulator = ExperimentConfig(
        mode="standalone", num_executors=25, workload=tpch(20), seed=5
    )
    offsets = (0, 977, 1954)  # "uniformly random start times", fixed for replay
    gammas = (0.1, 0.25, 0.5, 0.75, 0.9)

    specs = [
        CampaignSpec(
            "smoke",
            ExperimentConfig(
                num_executors=4, workload=tpch(3, ia=5.0, scales=(2,))
            ),
            axes={"scheduler": ("fifo", "pcaps"), "seed": (0, 1)},
            baseline="fifo",
            description="4-trial sanity campaign (tests, CI)",
        ),
        CampaignSpec(
            "demo",
            ExperimentConfig(
                num_executors=10, workload=tpch(6, ia=20.0, scales=(2, 10))
            ),
            axes={
                "scheduler": ("fifo", "decima", "cap-fifo", "pcaps"),
                "grid": ("DE", "CAISO"),
                "seed": (0, 1, 2),
            },
            baseline="fifo",
            description="24-trial showcase: 4 schedulers × 2 grids × 3 seeds",
        ),
        CampaignSpec(
            "table2",
            replace(prototype, seed=0),
            axes={
                "scheduler": ("k8s-default", "decima", "cap-k8s-default", "pcaps"),
                "grid": GRID_CODES,
                "trace_start_step": offsets,
            },
            baseline="k8s-default",
            description="Table 2: prototype mode, all grids × trace offsets",
        ),
        CampaignSpec(
            "table3",
            replace(simulator, num_executors=40, workload=tpch(25, ia=45.0), seed=0),
            axes={
                "scheduler": (
                    "fifo",
                    "weighted-fair",
                    "decima",
                    "greenhadoop",
                    "cap-fifo",
                    "cap-weighted-fair",
                    "cap-decima",
                    "pcaps",
                ),
                "grid": GRID_CODES,
                "trace_start_step": offsets,
            },
            baseline="fifo",
            description="Table 3: simulator mode, all grids × trace offsets",
        ),
        CampaignSpec(
            "fig7",
            prototype,
            axes={"scheduler": ("pcaps",), "gamma": gammas},
            baseline="k8s-default",
            description="Fig. 7: PCAPS γ sweep, prototype mode, DE",
        ),
        CampaignSpec(
            "fig8",
            prototype,
            axes={
                "scheduler": ("cap-k8s-default",),
                "cap_min_quota": (4, 8, 14, 22, 32),
            },
            baseline="k8s-default",
            description="Fig. 8: CAP B sweep, prototype mode, DE",
        ),
        CampaignSpec(
            "fig9",
            ExperimentConfig(
                mode="kubernetes",
                num_executors=24,
                per_job_cap=6,
                workload=tpch(15),
            ),
            axes={
                "scheduler": ("pcaps", "cap-k8s-default"),
                "seed": tuple(range(8)),
            },
            baseline="k8s-default",
            description="Fig. 9: per-job trials, 8 seed replicates",
        ),
        CampaignSpec(
            "fig10",
            ExperimentConfig(
                mode="kubernetes",
                num_executors=25,
                per_job_cap=6,
                workload=tpch(15),
                seed=2,
            ),
            axes={
                "scheduler": ("decima", "cap-k8s-default", "pcaps"),
                "grid": GRID_CODES,
            },
            baseline="k8s-default",
            description="Fig. 10: per-grid behaviour, prototype mode",
        ),
        CampaignSpec(
            "fig11",
            simulator,
            axes={"scheduler": ("pcaps",), "gamma": gammas},
            baseline="fifo",
            description="Fig. 11: PCAPS γ sweep, simulator mode, DE",
        ),
        CampaignSpec(
            "fig12",
            simulator,
            axes={
                "scheduler": ("cap-fifo",),
                "cap_min_quota": (2, 5, 8, 12, 16, 20),
            },
            baseline="fifo",
            description="Fig. 12: CAP B sweep, simulator mode, DE",
        ),
        CampaignSpec(
            "fig13-pcaps",
            replace(simulator, seed=11),
            axes={
                "scheduler": ("pcaps",),
                "gamma": (0.2, 0.4, 0.5, 0.6, 0.8, 0.95),
            },
            baseline="decima",
            description="Fig. 13: PCAPS frontier branch vs Decima",
        ),
        CampaignSpec(
            "fig13-cap",
            replace(simulator, seed=11),
            axes={
                "scheduler": ("cap-decima",),
                "cap_min_quota": (2, 4, 6, 9, 13, 18),
            },
            baseline="decima",
            description="Fig. 13: CAP-Decima frontier branch vs Decima",
        ),
        CampaignSpec(
            "fig14",
            replace(simulator, workload=tpch(15), seed=2),
            axes={
                "scheduler": ("decima", "cap-fifo", "pcaps"),
                "grid": GRID_CODES,
            },
            baseline="fifo",
            description="Fig. 14: per-grid behaviour, simulator mode",
        ),
        CampaignSpec(
            "fig16-17",
            replace(simulator, seed=6),
            axes={
                "scheduler": ("decima", "cap-fifo", "pcaps"),
                "workload.num_jobs": (6, 12, 25, 50),
            },
            baseline="fifo",
            description="Figs. 16/17: metrics vs batch size, DE",
        ),
        CampaignSpec(
            "fig18-19",
            replace(simulator, seed=6),
            axes={
                "scheduler": ("decima", "cap-fifo", "pcaps"),
                "workload.mean_interarrival": (10.0, 20.0, 30.0, 60.0),
            },
            baseline="fifo",
            description="Figs. 18/19: metrics vs mean interarrival, DE",
        ),
    ]
    return {spec.name: spec for spec in specs}
