"""Streaming campaigns: sweeps over service-mode runs.

The service analogue of :mod:`repro.campaign.spec` + :mod:`repro.campaign.
geo`: a :class:`StreamCampaignSpec` is a base
:class:`~repro.stream.service.ServiceConfig` plus axes, trials are keyed by
the same content-addressed scheme into the same append-only
:class:`~repro.campaign.store.ResultStore`, and re-runs skip completed
trials.

Key stability (the resume-from-store fix this module exists for): the trial
key serializes the *full* stream spec — family, rate, scales, seed,
horizon/max-jobs bounds, **and gc policy** — alongside the experiment
config, so a streaming campaign resumed against an existing store matches
exactly the trials it already ran. Service *cadence* fields
(``epoch_events``, checkpoint knobs) are deliberately excluded: they never
change metrics (pinned by ``tests/test_stream.py``), so re-running with a
different epoch size or checkpoint cadence still resumes cleanly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Mapping

from repro import faults
from repro.campaign.cache import KEY_LENGTH, canonical_json, code_fingerprint
from repro.campaign.executor import (
    CampaignRun,
    CampaignRunner,
    capture_trial_record,
)
from repro.campaign.spec import config_from_dict, config_to_dict
from repro.campaign.store import ResultStore, TrialRecord
from repro.experiments.runner import ExperimentConfig
from repro.stream.service import ServiceConfig, StreamReport, run_service
from repro.workloads.alibaba import AlibabaWorkloadModel
from repro.workloads.stream import StreamSpec

Axes = Mapping[str, Iterable[Any]] | Iterable[tuple[str, Iterable[Any]]]

#: ``on_progress(completed, total, line)`` — mirrors the campaign executor.
ProgressCallback = Callable[[int, int, str], None]

#: ServiceConfig fields excluded from the trial key: pure cadence, proven
#: metrics-neutral, so changing them must not orphan stored results.
CADENCE_FIELDS = ("epoch_events", "checkpoint_every_epochs", "checkpoint_dir")


# ----------------------------------------------------------------------
# Serialization (store records, trial keys)
# ----------------------------------------------------------------------
def service_to_dict(config: ServiceConfig) -> dict[str, Any]:
    """Serialize a service config (all nesting) to plain JSON types."""
    raw = dataclasses.asdict(config)

    def _plain(obj: Any) -> Any:
        if isinstance(obj, dict):
            return {k: _plain(v) for k, v in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [_plain(v) for v in obj]
        return obj

    plain = _plain(raw)
    plain["experiment"] = config_to_dict(config.experiment)
    return plain


def stream_spec_from_dict(data: Mapping[str, Any]) -> StreamSpec:
    """Rebuild a :class:`StreamSpec` from its serialized form."""
    params = dict(data)
    if isinstance(params.get("alibaba_model"), Mapping):
        params["alibaba_model"] = AlibabaWorkloadModel(
            **params["alibaba_model"]
        )
    if "tpch_scales" in params:
        params["tpch_scales"] = tuple(params["tpch_scales"])
    return StreamSpec(**params)


def service_from_dict(data: Mapping[str, Any]) -> ServiceConfig:
    """Rebuild a :class:`ServiceConfig` from :func:`service_to_dict`."""
    params = dict(data)
    params["experiment"] = config_from_dict(params["experiment"])
    params["stream"] = stream_spec_from_dict(params["stream"])
    return ServiceConfig(**params)


def stream_trial_key(
    config: ServiceConfig, code_version: str | None = None
) -> str:
    """Content-addressed identity of one streaming trial.

    Hashes the experiment config plus the complete stream spec (rate,
    horizon, seed, gc policy, ...) and the window shape, under
    ``kind: "stream"``; cadence fields are dropped (see
    :data:`CADENCE_FIELDS`).
    """
    config_dict = service_to_dict(config)
    for field_name in CADENCE_FIELDS:
        config_dict.pop(field_name, None)
    payload = {
        "code_version": (
            code_version if code_version is not None else code_fingerprint()
        ),
        "kind": "stream",
        "config": config_dict,
    }
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()[:KEY_LENGTH]


def stream_metrics(report: StreamReport) -> dict[str, Any]:
    """The summary serialized for one successful streaming trial."""
    return {
        **report.summary,
        "fingerprint": report.fingerprint,
        "jobs_arrived": report.jobs_arrived,
        "jct_mean": report.jct_moments["mean"],
        "jct_std": report.jct_moments["std"],
        "stretch_mean": report.stretch_moments["mean"],
        "stretch_std": report.stretch_moments["std"],
        "windows": len(report.windows),
    }


# ----------------------------------------------------------------------
# Spec + axes
# ----------------------------------------------------------------------
def apply_stream_axis(
    config: ServiceConfig, field_name: str, value: Any
) -> ServiceConfig:
    """Return ``config`` with one (possibly dotted) field replaced.

    ``stream.*`` reaches the :class:`StreamSpec`, ``experiment.*`` the
    :class:`~repro.experiments.runner.ExperimentConfig`; bare names are
    service-level fields.
    """
    if field_name.startswith("stream."):
        sub = field_name.split(".", 1)[1]
        return replace(config, stream=replace(config.stream, **{sub: value}))
    if field_name.startswith("experiment."):
        sub = field_name.split(".", 1)[1]
        return replace(
            config, experiment=replace(config.experiment, **{sub: value})
        )
    return replace(config, **{field_name: value})


@dataclass(frozen=True)
class StreamCampaignSpec:
    """A named cartesian sweep over service-config fields."""

    name: str
    base: ServiceConfig
    axes: tuple[tuple[str, tuple[Any, ...]], ...]
    description: str = ""

    def __init__(
        self,
        name: str,
        base: ServiceConfig,
        axes: Axes,
        description: str = "",
    ) -> None:
        pairs = axes.items() if isinstance(axes, Mapping) else axes
        normalized = tuple((str(k), tuple(v)) for k, v in pairs)
        for field_name, values in normalized:
            if not values:
                raise ValueError(f"axis {field_name!r} has no values")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "axes", normalized)
        object.__setattr__(self, "description", description)

    def axis_summary(self) -> str:
        return " · ".join(f"{name}×{len(values)}" for name, values in self.axes)

    def trials(self) -> list[ServiceConfig]:
        """Expand the spec into concrete, deduplicated trial configs."""
        configs = []
        names = [name for name, _ in self.axes]
        for combo in itertools.product(*(values for _, values in self.axes)):
            config = self.base
            for field_name, value in zip(names, combo):
                config = apply_stream_axis(config, field_name, value)
            configs.append(config)
        return list(dict.fromkeys(configs))


def stream_presets() -> dict[str, StreamCampaignSpec]:
    """Named streaming campaign specs (laptop scale)."""
    smoke_base = ServiceConfig(
        experiment=ExperimentConfig(scheduler="fifo", num_executors=6),
        stream=StreamSpec(
            mean_interarrival=20.0, tpch_scales=(2,), max_jobs=40
        ),
        epoch_events=512,
    )
    steady_base = ServiceConfig(
        experiment=ExperimentConfig(scheduler="pcaps", num_executors=16),
        stream=StreamSpec(
            mean_interarrival=20.0, tpch_scales=(2,), max_jobs=2000
        ),
        window_s=3600.0,
        epoch_events=8192,
    )
    specs = [
        StreamCampaignSpec(
            "stream-smoke",
            smoke_base,
            axes={"experiment.scheduler": ("fifo", "pcaps")},
            description="2-trial streaming sanity campaign (tests, CI)",
        ),
        StreamCampaignSpec(
            "stream-steady",
            steady_base,
            axes={
                "experiment.scheduler": ("fifo", "decima", "pcaps"),
                "stream.seed": (0, 1),
            },
            description="steady-state service runs: 3 schedulers × 2 "
            "arrival seeds, 2000 jobs each in O(1) memory",
        ),
    ]
    return {spec.name: spec for spec in specs}


# ----------------------------------------------------------------------
# Execution against the shared result store
# ----------------------------------------------------------------------
def stream_trial_label(config: ServiceConfig) -> str:
    stream = config.stream
    bound = (
        f"jobs={stream.max_jobs}"
        if stream.max_jobs is not None
        else f"horizon={stream.horizon_s}s"
        if stream.horizon_s is not None
        else "unbounded"
    )
    return (
        f"{config.experiment.scheduler} stream {stream.family} {bound} "
        f"ia={stream.mean_interarrival:g}s seed={stream.seed}"
    )


def run_stream_trial_to_record(
    key: str, campaign: str, config: ServiceConfig, attempt: int = 1
) -> TrialRecord:
    """Execute one streaming trial, capturing failure as an error record."""

    def execute():
        faults.maybe_inject_worker(key, attempt)
        return run_service(config)

    return capture_trial_record(
        key,
        campaign,
        service_to_dict(config),
        execute,
        stream_metrics,
    )


def _stream_pool_worker(
    payload: tuple[str, str, dict], attempt: int = 1, checkpoint=None
) -> TrialRecord:
    """Top-level (picklable) worker: rebuild the config, run, summarize.

    ``checkpoint`` is accepted for supervisor-loop signature compatibility
    and ignored — service runs manage their own checkpoint cadence via
    :class:`ServiceConfig`, not the campaign supervisor's trial policy.
    """
    key, campaign, config_dict = payload
    return run_stream_trial_to_record(
        key, campaign, service_from_dict(config_dict), attempt=attempt
    )


class StreamCampaignRunner(CampaignRunner):
    """:class:`CampaignRunner` sweeping :class:`ServiceConfig` trials.

    Inherits the whole resume/record/progress/pool loop; only the
    config-type hooks differ, so streaming campaigns share the scheduler
    campaigns' store format, caching semantics, and process-pool fan-out.
    """

    worker = staticmethod(_stream_pool_worker)

    def trial_key_for(self, config: ServiceConfig) -> str:
        return stream_trial_key(config, self.code_version)

    def run_record(
        self, key: str, campaign: str, config: ServiceConfig, attempt: int = 1
    ) -> TrialRecord:
        return run_stream_trial_to_record(key, campaign, config, attempt=attempt)

    def payload_for(
        self, key: str, campaign: str, config: ServiceConfig
    ) -> tuple:
        return (key, campaign, service_to_dict(config))

    def label_for(self, record: TrialRecord) -> str:
        return stream_trial_label(service_from_dict(record.config))


def keyed_stream_trials(
    spec: StreamCampaignSpec, code_version: str | None = None
) -> list[tuple[str, ServiceConfig]]:
    """(key, config) per trial, deduplicated, in campaign order."""
    return StreamCampaignRunner(
        store=None, code_version=code_version
    ).keyed_trials(spec)


def run_stream_campaign(
    spec: StreamCampaignSpec,
    store: ResultStore,
    resume: bool = True,
    on_progress: ProgressCallback | None = None,
    workers: int | None = None,
) -> CampaignRun:
    """Execute every streaming trial not already in the store."""
    runner = StreamCampaignRunner(store, workers=workers)
    return runner.run(spec, resume=resume, on_progress=on_progress)


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def stream_campaign_report(
    records: list[TrialRecord],
) -> list[dict[str, Any]]:
    """Mean summary metrics per scheduler over the spec's ``ok`` records."""
    by_scheduler: dict[str, list[TrialRecord]] = {}
    for record in records:
        if record.ok:
            scheduler = record.config["experiment"]["scheduler"]
            by_scheduler.setdefault(scheduler, []).append(record)

    def mean_of(group: list[TrialRecord], metric: str) -> float:
        return sum(r.metrics[metric] for r in group) / len(group)

    rows = [
        {
            "scheduler": scheduler,
            "replicates": len(group),
            "carbon_footprint": mean_of(group, "carbon_footprint"),
            "avg_jct": mean_of(group, "avg_jct"),
            "ect": mean_of(group, "ect"),
            "utilization": mean_of(group, "utilization"),
            "stretch_mean": mean_of(group, "stretch_mean"),
            "jobs": sum(int(r.metrics["num_jobs"]) for r in group),
        }
        for scheduler, group in by_scheduler.items()
    ]
    rows.sort(key=lambda r: r["carbon_footprint"])
    return rows


def format_stream_campaign_report(
    rows: list[dict[str, Any]], title: str = ""
) -> str:
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'scheduler':<16} {'n':>3} {'jobs':>7} {'carbon':>12} "
        f"{'ECT':>9} {'JCT':>9} {'util':>6} {'stretch':>8}"
    )
    for row in rows:
        lines.append(
            f"{row['scheduler']:<16} {row['replicates']:>3} "
            f"{row['jobs']:>7} {row['carbon_footprint']:>12.1f} "
            f"{row['ect']:>9.1f} {row['avg_jct']:>9.1f} "
            f"{row['utilization']:>6.3f} {row['stretch_mean']:>8.2f}"
        )
    return "\n".join(lines)


__all__ = [
    "CADENCE_FIELDS",
    "StreamCampaignRunner",
    "StreamCampaignSpec",
    "apply_stream_axis",
    "format_stream_campaign_report",
    "keyed_stream_trials",
    "run_stream_campaign",
    "run_stream_trial_to_record",
    "service_from_dict",
    "service_to_dict",
    "stream_campaign_report",
    "stream_metrics",
    "stream_presets",
    "stream_spec_from_dict",
    "stream_trial_key",
]
