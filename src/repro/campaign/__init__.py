"""repro.campaign — parallel experiment-campaign orchestration.

The paper's evaluation is hundreds of (scheduler × grid × workload × seed ×
trace-slice) trials: Tables 2/3 average repeated trials at random trace start
times and Figs. 7–19 are parameter sweeps. This package turns those sweeps
into declarative, resumable, cached campaigns:

- :mod:`repro.campaign.spec` — :class:`CampaignSpec` expands cartesian grids
  over :class:`~repro.experiments.runner.ExperimentConfig` fields into
  concrete trial lists, with named presets for the paper's campaigns;
- :mod:`repro.campaign.cache` — content-addressed trial keys (config hash ×
  code version) so re-runs and overlapping sweeps skip completed trials;
- :mod:`repro.campaign.store` — an append-only JSONL result store holding
  per-trial metric summaries;
- :mod:`repro.campaign.executor` — a supervised process-pool runner with
  failure isolation, progress callbacks, and resume-from-store;
- :mod:`repro.campaign.supervise` — the resilience policy (per-trial
  timeouts, seeded-backoff retries, quarantine, mid-flight checkpoints)
  the executor enforces;
- :mod:`repro.campaign.reports` — replicate aggregation (mean/p50/p95) and
  baseline-normalized tables from stored records alone.

Quickstart::

    from repro.campaign import CampaignRunner, ResultStore, campaign_presets

    spec = campaign_presets()["demo"]
    runner = CampaignRunner(ResultStore("campaign-results.jsonl"))
    run = runner.run(spec)            # fans trials across worker processes
    rerun = runner.run(spec)          # 100% cache hits, zero simulations
    assert rerun.stats.hit_rate == 1.0
"""

from repro.campaign.cache import CacheStats, trial_key
from repro.campaign.executor import CampaignRun, CampaignRunner
from repro.campaign.geo import (
    GeoCampaignRun,
    GeoCampaignSpec,
    format_geo_report,
    geo_campaign_report,
    geo_presets,
    geo_trial_key,
    run_geo_campaign,
)
from repro.campaign.reports import campaign_report, format_campaign_report
from repro.campaign.spec import CampaignSpec, campaign_presets, matchup_spec
from repro.campaign.store import ResultStore, StoreCheck, TrialRecord
from repro.campaign.supervise import (
    CampaignInterrupted,
    CheckpointPolicy,
    SupervisorConfig,
)

__all__ = [
    "CacheStats",
    "CampaignInterrupted",
    "CampaignRun",
    "CampaignRunner",
    "CampaignSpec",
    "CheckpointPolicy",
    "GeoCampaignRun",
    "GeoCampaignSpec",
    "ResultStore",
    "StoreCheck",
    "SupervisorConfig",
    "TrialRecord",
    "campaign_presets",
    "campaign_report",
    "format_campaign_report",
    "format_geo_report",
    "geo_campaign_report",
    "geo_presets",
    "geo_trial_key",
    "matchup_spec",
    "run_geo_campaign",
    "trial_key",
]
