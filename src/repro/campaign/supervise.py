"""Worker-supervision policy for campaign runs.

The executor's pool loop consults one :class:`SupervisorConfig` for every
resilience decision: how long a trial may run before its worker is presumed
hung, how many attempts a trial key gets before it is quarantined, how long
to back off between attempts, and whether workers checkpoint mid-trial so a
retry resumes instead of restarting.

Backoff is *seeded*: the jitter for ``(key, attempt)`` is a pure function
of ``(backoff_seed, key, attempt)``, so a rerun of a flaky campaign replays
the identical retry schedule — determinism extends to the failure path, not
just the results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class CheckpointPolicy:
    """Where and how often a campaign worker checkpoints its stepper.

    ``every_events`` counts engine events between checkpoint writes; each
    write is atomic (temp + rename), so a worker killed mid-write leaves
    the previous complete checkpoint, never a torn one.
    """

    directory: str
    every_events: int = 200

    def path_for(self, key: str) -> Path:
        # Trial keys are hex digests, so they are filename-safe by
        # construction.
        return Path(self.directory) / f"{key}.ckpt"


@dataclass(frozen=True)
class SupervisorConfig:
    """Resilience knobs for :class:`~repro.campaign.executor.CampaignRunner`.

    Parameters
    ----------
    trial_timeout_s:
        Wall-clock budget per attempt in pool mode. A worker that exceeds
        it is presumed hung: the attempt is charged, the pool is rebuilt
        (the only way to reclaim a hung ``ProcessPoolExecutor`` worker),
        and sibling in-flight trials are resubmitted without charge.
        ``None`` disables timeouts (the default — simulations are fast).
    max_attempts:
        Attempt budget per trial key, including the first attempt. A key
        that exhausts it is *quarantined*: recorded as a failed
        :class:`~repro.campaign.store.TrialRecord` carrying the attempt
        history, and never retried again this run.
    backoff_base_s / backoff_factor / backoff_max_s / backoff_seed:
        Seeded exponential backoff between attempts of the same key:
        ``min(max, base * factor**(attempt-1))`` scaled by a jitter in
        [0.5, 1.0) drawn from ``Random(f"{seed}:{key}:{attempt}")``.
    checkpoint_dir / checkpoint_every_events:
        When ``checkpoint_dir`` is set, single-cluster trials run through
        a :class:`~repro.simulator.engine.SimulationStepper` that
        checkpoints every N events; a retried attempt restores the last
        checkpoint and resumes mid-flight. Fingerprint-neutral by the
        checkpoint determinism contract (tests/test_checkpoint.py).
    """

    trial_timeout_s: float | None = None
    max_attempts: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    backoff_seed: int = 0
    checkpoint_dir: str | None = None
    checkpoint_every_events: int = 200

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.trial_timeout_s is not None and self.trial_timeout_s <= 0:
            raise ValueError("trial_timeout_s must be positive (or None)")
        if self.checkpoint_every_events < 1:
            raise ValueError("checkpoint_every_events must be >= 1")

    def checkpoint_policy(self) -> CheckpointPolicy | None:
        if self.checkpoint_dir is None:
            return None
        return CheckpointPolicy(
            directory=str(self.checkpoint_dir),
            every_events=self.checkpoint_every_events,
        )


def backoff_delay(config: SupervisorConfig, key: str, attempt: int) -> float:
    """Seconds to wait before re-running ``key`` after failed ``attempt``.

    Deterministic: equal ``(backoff_seed, key, attempt)`` always yields the
    equal delay, on any host, so chaos tests can assert exact schedules.
    """
    base = min(
        config.backoff_max_s,
        config.backoff_base_s * config.backoff_factor ** max(0, attempt - 1),
    )
    jitter = random.Random(f"{config.backoff_seed}:{key}:{attempt}").random()
    return base * (0.5 + 0.5 * jitter)


class CampaignInterrupted(RuntimeError):
    """Raised when a SIGINT/SIGTERM (or :meth:`~repro.campaign.executor.
    CampaignRunner.request_shutdown`) stops a run mid-campaign.

    By the time this propagates, every trial that *completed* before the
    stop has been drained into the store — a follow-up ``resume`` picks up
    exactly where the interrupted run left off.
    """

    def __init__(self, completed: int, pending: int) -> None:
        super().__init__(
            f"campaign interrupted: {completed} completed trial(s) drained "
            f"to the store, {pending} still pending"
        )
        self.completed = completed
        self.pending = pending


__all__ = [
    "CampaignInterrupted",
    "CheckpointPolicy",
    "SupervisorConfig",
    "backoff_delay",
]
