"""Aggregation and table rendering over stored campaign records.

Reports work from :class:`~repro.campaign.store.TrialRecord` summaries
alone — no simulation re-runs. Records are grouped into *cells* (unique
combinations of every config field except the replicate fields ``seed`` and
``trace_start_step``); replicates within a cell are aggregated as
mean/median/p95, following the paper's "averaged over repeated trials at
random trace start times" methodology.

When a baseline scheduler is named, each record is normalized against the
stored baseline record of the *same replicate* (identical config modulo the
policy fields) via :func:`~repro.simulator.metrics.compare_to_baseline` —
the stored summaries expose the same metric attributes as live
:class:`~repro.simulator.metrics.ExperimentResult` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from repro.campaign.cache import canonical_json
from repro.campaign.spec import POLICY_FIELDS, REPLICATE_FIELDS
from repro.campaign.store import TrialRecord
from repro.experiments.figures import SweepPoint
from repro.simulator.metrics import compare_to_baseline


def _flatten(config: dict[str, Any], prefix: str = "") -> dict[str, Any]:
    flat: dict[str, Any] = {}
    for key, value in config.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, prefix=f"{name}."))
        elif isinstance(value, list):
            flat[name] = tuple(value)
        else:
            flat[name] = value
    return flat


def _subset_id(flat: dict[str, Any], exclude: Sequence[str]) -> str:
    kept = {k: v for k, v in flat.items() if k not in exclude}
    return canonical_json({k: list(v) if isinstance(v, tuple) else v
                           for k, v in kept.items()})


def _sort_token(value: Any) -> tuple:
    if isinstance(value, bool) or value is None:
        return (2, str(value))
    if isinstance(value, (int, float)):
        return (0, float(value), "")
    return (1, 0.0, str(value))


@dataclass(frozen=True)
class MetricStats:
    """One metric summarized across a cell's replicates."""

    mean: float
    p50: float
    p95: float

    @classmethod
    def of(cls, values: Iterable[float]) -> "MetricStats":
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise ValueError(
                "MetricStats.of() needs at least one value; an empty "
                "replicate cell should be dropped before aggregation"
            )
        if arr.size == 1:
            # A single-replicate cell is exact, not an interpolation
            # question: every statistic *is* the one observation.
            value = float(arr[0])
            return cls(mean=value, p50=value, p95=value)
        return cls(
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
        )


@dataclass(frozen=True)
class ReportRow:
    """One aggregated cell of a campaign report."""

    label: str
    scheduler: str
    n: int  # replicates aggregated
    carbon: MetricStats  # reduction % if normalized, else absolute footprint
    ect: MetricStats  # ratio if normalized, else seconds
    jct: MetricStats
    normalized: bool


def campaign_report(
    records: Sequence[TrialRecord], baseline: str | None = None
) -> list[ReportRow]:
    """Aggregate stored records into deterministic, sorted table rows.

    Row order depends only on cell contents (numeric-aware sort over the
    varying config fields), never on completion order — so ``campaign run``
    and a later ``campaign report`` from the store render identical tables.
    """
    ok = [r for r in records if r.ok]
    if not ok:
        return []
    flats = {r.key: _flatten(r.config) for r in ok}

    # Fields that actually vary across trials (minus replicate fields) name
    # the cells and build the row labels.
    varying: list[str] = []
    for field_name in flats[ok[0].key]:
        if field_name in REPLICATE_FIELDS:
            continue
        if len({repr(flat.get(field_name)) for flat in flats.values()}) > 1:
            varying.append(field_name)

    base_by_replicate: dict[str, TrialRecord] = {}
    if baseline is not None:
        for record in ok:
            if record.scheduler_name == baseline:
                base_by_replicate[
                    _subset_id(flats[record.key], POLICY_FIELDS)
                ] = record

    cells: dict[str, list[TrialRecord]] = {}
    for record in ok:
        cells.setdefault(_subset_id(flats[record.key], REPLICATE_FIELDS), []).append(
            record
        )

    rows = []
    for members in cells.values():
        flat = flats[members[0].key]
        label_parts = []
        for field_name in varying:
            value = flat.get(field_name)
            short = field_name.removeprefix("workload.")
            label_parts.append(f"{short}={value}" if short != "scheduler" else str(value))
        label = " ".join(label_parts) or members[0].scheduler_name

        if baseline is not None:
            normalized = []
            for record in members:
                partner = base_by_replicate.get(
                    _subset_id(flats[record.key], POLICY_FIELDS)
                )
                if partner is not None:
                    normalized.append(compare_to_baseline(record, partner))
            if not normalized:
                continue  # no stored baseline replicate to compare against
            rows.append(
                (
                    tuple(_sort_token(flat.get(f)) for f in varying),
                    ReportRow(
                        label=label,
                        scheduler=members[0].scheduler_name,
                        n=len(normalized),
                        carbon=MetricStats.of(
                            m.carbon_reduction_pct for m in normalized
                        ),
                        ect=MetricStats.of(m.ect_ratio for m in normalized),
                        jct=MetricStats.of(m.jct_ratio for m in normalized),
                        normalized=True,
                    ),
                )
            )
        else:
            rows.append(
                (
                    tuple(_sort_token(flat.get(f)) for f in varying),
                    ReportRow(
                        label=label,
                        scheduler=members[0].scheduler_name,
                        n=len(members),
                        carbon=MetricStats.of(r.carbon_footprint for r in members),
                        ect=MetricStats.of(r.ect for r in members),
                        jct=MetricStats.of(r.avg_jct for r in members),
                        normalized=False,
                    ),
                )
            )
    rows.sort(key=lambda pair: pair[0])
    return [row for _, row in rows]


def format_campaign_report(
    rows: Sequence[ReportRow], title: str | None = None
) -> str:
    """Fixed-width rendering of :func:`campaign_report` rows."""
    if not rows:
        return "(no completed trials in store)"
    normalized = rows[0].normalized
    lines = []
    if title:
        lines.append(title)
    if normalized:
        lines.append(
            f"{'cell':<38} {'n':>3} {'carbon_red%':>12} {'ECT':>7} {'JCT':>7}"
            f"   {'p50/p95 carbon_red%':>20}"
        )
        for row in rows:
            lines.append(
                f"{row.label:<38} {row.n:>3} {row.carbon.mean:>11.1f}% "
                f"{row.ect.mean:>7.3f} {row.jct.mean:>7.3f}   "
                f"{row.carbon.p50:>9.1f}/{row.carbon.p95:<9.1f}"
            )
    else:
        lines.append(
            f"{'cell':<38} {'n':>3} {'carbon':>12} {'ECT_s':>9} {'JCT_s':>9}"
        )
        for row in rows:
            lines.append(
                f"{row.label:<38} {row.n:>3} {row.carbon.mean:>12.0f} "
                f"{row.ect.mean:>9.1f} {row.jct.mean:>9.1f}"
            )
    return "\n".join(lines)


def sweep_points(
    records: Sequence[TrialRecord], baseline: str, parameter: str
) -> list[SweepPoint]:
    """Normalized metrics per sweep-knob value, sorted by the knob.

    ``parameter`` is a (possibly dotted) config field, e.g. ``gamma`` or
    ``cap_min_quota``. Replicates at the same knob value are averaged.
    """
    ok = [r for r in records if r.ok]
    flats = {r.key: _flatten(r.config) for r in ok}
    base_by_replicate = {
        _subset_id(flats[r.key], POLICY_FIELDS): r
        for r in ok
        if r.scheduler_name == baseline
    }
    grouped: dict[float, list] = {}
    for record in ok:
        if record.scheduler_name == baseline:
            continue
        partner = base_by_replicate.get(_subset_id(flats[record.key], POLICY_FIELDS))
        if partner is None:
            continue
        value = float(flats[record.key][parameter])
        grouped.setdefault(value, []).append(compare_to_baseline(record, partner))
    points = []
    for value in sorted(grouped):
        metrics = grouped[value]
        points.append(
            SweepPoint(
                parameter=value,
                carbon_reduction_pct=float(
                    np.mean([m.carbon_reduction_pct for m in metrics])
                ),
                ect_ratio=float(np.mean([m.ect_ratio for m in metrics])),
                jct_ratio=float(np.mean([m.jct_ratio for m in metrics])),
            )
        )
    return points
