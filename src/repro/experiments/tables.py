"""Row producers for the paper's tables.

Each function regenerates one table's rows at laptop scale: cluster size,
batch size, and trace length are reduced (the paper uses K=100 executors and
3-year traces), but normalization and averaging follow the paper exactly, so
the *shape* — who wins, by roughly what factor — is comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.carbon.grids import GRID_CODES, GRID_SPECS, synthesize_trace
from repro.carbon.trace import TraceStats
from repro.experiments.runner import ExperimentConfig, run_matchup
from repro.simulator.metrics import (
    NormalizedMetrics,
    compare_to_baseline,
    mean_normalized,
)
from repro.workloads.batch import WorkloadSpec

#: Table 1 of the paper, for side-by-side display with measured stats.
PAPER_TABLE1: dict[str, tuple[float, float, float, float]] = {
    code: (spec.minimum, spec.maximum, spec.mean, spec.coeff_var)
    for code, spec in GRID_SPECS.items()
}

#: Table 2 (prototype, normalized to the Spark/Kubernetes default).
PAPER_TABLE2: dict[str, tuple[float, float, float]] = {
    # scheduler: (carbon reduction %, avg ECT, avg JCT)
    "k8s-default": (0.0, 1.0, 1.0),
    "decima": (1.2, 0.857, 0.852),
    "cap-k8s-default": (24.7, 1.126, 1.996),
    "pcaps": (32.9, 1.013, 1.381),
}

#: Table 3 (simulator, normalized to Spark standalone FIFO).
PAPER_TABLE3: dict[str, tuple[float, float, float]] = {
    "fifo": (0.0, 1.0, 1.0),
    "weighted-fair": (12.1, 0.972, 0.652),
    "decima": (21.5, 0.970, 0.654),
    "greenhadoop": (8.2, 1.077, 1.918),
    "cap-fifo": (22.7, 1.108, 2.274),
    "cap-weighted-fair": (34.2, 1.011, 1.217),
    "cap-decima": (31.1, 1.061, 1.479),
    "pcaps": (39.7, 1.045, 1.436),
}


@dataclass(frozen=True)
class Table1Row:
    grid: str
    paper: tuple[float, float, float, float]
    measured: TraceStats


def table1_rows(hours: int = 26_304, seed: int = 0) -> list[Table1Row]:
    """Table 1: synthetic-trace statistics next to the paper's values."""
    rows = []
    for offset, code in enumerate(GRID_CODES):
        trace = synthesize_trace(code, hours=hours, seed=seed + offset)
        rows.append(
            Table1Row(grid=code, paper=PAPER_TABLE1[code], measured=trace.stats())
        )
    return rows


def _grid_average(
    scheduler_names: list[str],
    baseline_name: str,
    base_config: ExperimentConfig,
    grids: tuple[str, ...],
    trace_starts: tuple[int, ...],
) -> dict[str, NormalizedMetrics]:
    """Run a matchup per (grid, start offset) and average the normalized rows."""
    per_scheduler: dict[str, list[NormalizedMetrics]] = {
        name: [] for name in scheduler_names if name != baseline_name
    }
    for grid in grids:
        for start in trace_starts:
            config = replace(
                base_config, grid=grid, trace_start_step=start
            )
            results = run_matchup(scheduler_names, config)
            baseline = results[baseline_name]
            for name in per_scheduler:
                per_scheduler[name].append(
                    compare_to_baseline(results[name], baseline)
                )
    averaged = {
        baseline_name: NormalizedMetrics(
            scheduler_name=baseline_name,
            baseline_name=baseline_name,
            carbon_reduction_pct=0.0,
            ect_ratio=1.0,
            jct_ratio=1.0,
        )
    }
    for name, rows in per_scheduler.items():
        averaged[name] = mean_normalized(rows)
    return averaged


def table2_rows(
    num_executors: int = 40,
    num_jobs: int = 25,
    mean_interarrival: float = 45.0,
    grids: tuple[str, ...] = GRID_CODES,
    trace_starts: tuple[int, ...] = (0,),
    seed: int = 0,
) -> dict[str, NormalizedMetrics]:
    """Table 2: prototype-style (Kubernetes mode) top-line comparison.

    Schedulers: the Spark/Kubernetes default, Decima, CAP on top of the
    default, and PCAPS — each normalized to the default, averaged over
    grids. The per-job executor cap scales with the cluster as in the
    prototype (25 of 100 executors).
    """
    config = ExperimentConfig(
        mode="kubernetes",
        num_executors=num_executors,
        per_job_cap=max(2, num_executors // 4),
        workload=WorkloadSpec(
            family="tpch", num_jobs=num_jobs, mean_interarrival=mean_interarrival
        ),
        seed=seed,
    )
    names = ["k8s-default", "decima", "cap-k8s-default", "pcaps"]
    return _grid_average(names, "k8s-default", config, grids, trace_starts)


def table3_rows(
    num_executors: int = 40,
    num_jobs: int = 25,
    mean_interarrival: float = 45.0,
    grids: tuple[str, ...] = GRID_CODES,
    trace_starts: tuple[int, ...] = (0,),
    seed: int = 0,
) -> dict[str, NormalizedMetrics]:
    """Table 3: simulator (standalone mode) top-line comparison.

    Schedulers: FIFO, Weighted Fair, Decima, GreenHadoop, CAP over each of
    the three carbon-agnostic schedulers, and PCAPS — normalized to FIFO,
    averaged over grids.
    """
    config = ExperimentConfig(
        mode="standalone",
        num_executors=num_executors,
        workload=WorkloadSpec(
            family="tpch", num_jobs=num_jobs, mean_interarrival=mean_interarrival
        ),
        seed=seed,
    )
    names = [
        "fifo",
        "weighted-fair",
        "decima",
        "greenhadoop",
        "cap-fifo",
        "cap-weighted-fair",
        "cap-decima",
        "pcaps",
    ]
    return _grid_average(names, "fifo", config, grids, trace_starts)


def format_metric_table(
    rows: dict[str, NormalizedMetrics],
    paper: dict[str, tuple[float, float, float]] | None = None,
) -> str:
    """Render a Table 2/3-style comparison as fixed-width text."""
    lines = [
        f"{'scheduler':<18} {'carbon_red%':>12} {'ECT':>7} {'JCT':>7}"
        + ("   (paper: red%/ECT/JCT)" if paper else "")
    ]
    for name, m in rows.items():
        line = (
            f"{name:<18} {m.carbon_reduction_pct:>11.1f}% "
            f"{m.ect_ratio:>7.3f} {m.jct_ratio:>7.3f}"
        )
        if paper and name in paper:
            p = paper[name]
            line += f"   ({p[0]:.1f}% / {p[1]:.3f} / {p[2]:.3f})"
        lines.append(line)
    return "\n".join(lines)


def format_table1(rows: list[Table1Row]) -> str:
    """Render Table 1 (paper vs measured trace statistics)."""
    lines = [
        f"{'grid':<7} {'min':>6} {'max':>6} {'mean':>7} {'cov':>6}"
        f"   {'paper-min':>9} {'paper-max':>9} {'paper-mean':>10} {'paper-cov':>9}"
    ]
    for row in rows:
        s = row.measured
        p = row.paper
        lines.append(
            f"{row.grid:<7} {s.minimum:>6.0f} {s.maximum:>6.0f} {s.mean:>7.1f} "
            f"{s.coeff_var:>6.3f}   {p[0]:>9.0f} {p[1]:>9.0f} {p[2]:>10.0f} "
            f"{p[3]:>9.3f}"
        )
    return "\n".join(lines)


def table1_error_summary(rows: list[Table1Row]) -> dict[str, float]:
    """Mean absolute relative error of the synthetic traces vs Table 1."""
    mean_errs, cov_errs = [], []
    for row in rows:
        paper_min, paper_max, paper_mean, paper_cov = row.paper
        mean_errs.append(abs(row.measured.mean - paper_mean) / paper_mean)
        cov_errs.append(abs(row.measured.coeff_var - paper_cov) / max(paper_cov, 1e-9))
    return {
        "mean_rel_err": float(np.mean(mean_errs)),
        "cov_rel_err": float(np.mean(cov_errs)),
    }
