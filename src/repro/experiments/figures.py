"""Series producers for the paper's figures.

Each function regenerates the data behind one figure (we print/return series
rather than render images: the benchmark harness reports the same rows the
paper plots). Scales are reduced to laptop size; see DESIGN.md Section 4 for
the per-figure mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.carbon.grids import GRID_CODES, synthesize_trace
from repro.experiments.runner import (
    ExperimentConfig,
    carbon_trace_for,
    run_experiment,
    run_matchup,
)
from repro.simulator.metrics import ExperimentResult, compare_to_baseline
from repro.simulator.trace import busy_executor_series, executor_timeline
from repro.workloads.batch import WorkloadSpec

# ----------------------------------------------------------------------
# Fig. 5 — carbon-intensity snapshots
# ----------------------------------------------------------------------
def fig5_series(
    hours: int = 48, start_step: int = 360, seed: int = 0
) -> dict[str, np.ndarray]:
    """48-hour carbon series for all six grids (Fig. 5)."""
    series = {}
    for offset, code in enumerate(GRID_CODES):
        trace = synthesize_trace(code, hours=start_step + hours, seed=seed + offset)
        series[code] = trace.values[start_step : start_step + hours].copy()
    return series


# ----------------------------------------------------------------------
# Fig. 6 — executor usage over time on a small cluster
# ----------------------------------------------------------------------
@dataclass
class Fig6Data:
    """Executor-occupancy grids for the three compared schedulers."""

    timelines: dict[str, np.ndarray]  # scheduler -> [executors x time buckets]
    carbon: np.ndarray  # per-bucket carbon intensity
    resolution: float
    results: dict[str, ExperimentResult]


def fig6_executor_usage(
    num_executors: int = 5,
    num_jobs: int = 20,
    grid: str = "DE",
    seed: int = 3,
    resolution: float = 10.0,
) -> Fig6Data:
    """Fig. 6: Decima vs PCAPS vs CAP-FIFO executor timelines (DE grid)."""
    config = ExperimentConfig(
        grid=grid,
        num_executors=num_executors,
        workload=WorkloadSpec(
            family="tpch", num_jobs=num_jobs, tpch_scales=(2, 10)
        ),
        seed=seed,
    )
    results = run_matchup(["decima", "pcaps", "cap-fifo"], config)
    horizon = max(r.ect for r in results.values())
    timelines = {
        name: executor_timeline(r.trace, resolution=resolution)
        for name, r in results.items()
    }
    trace = results["decima"].carbon_trace
    buckets = int(np.ceil(horizon / resolution)) + 1
    carbon = np.array(
        [trace.intensity_at(i * resolution) for i in range(buckets)]
    )
    return Fig6Data(
        timelines=timelines, carbon=carbon, resolution=resolution, results=results
    )


# ----------------------------------------------------------------------
# Figs. 7/8/11/12 — carbon-awareness sweeps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    parameter: float
    carbon_reduction_pct: float
    ect_ratio: float
    jct_ratio: float


def pcaps_gamma_sweep(
    gammas: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9),
    baseline: str = "fifo",
    config: ExperimentConfig | None = None,
) -> list[SweepPoint]:
    """Figs. 7/11: carbon vs ECT across PCAPS's γ (relative to a baseline)."""
    config = config or ExperimentConfig(
        grid="DE",
        num_executors=25,
        workload=WorkloadSpec(family="tpch", num_jobs=20),
        seed=5,
    )
    trace = carbon_trace_for(config)
    base = run_experiment(replace(config, scheduler=baseline), carbon_trace=trace)
    points = []
    for gamma in gammas:
        result = run_experiment(
            replace(config, scheduler="pcaps", gamma=gamma), carbon_trace=trace
        )
        m = compare_to_baseline(result, base)
        points.append(
            SweepPoint(gamma, m.carbon_reduction_pct, m.ect_ratio, m.jct_ratio)
        )
    return points


def cap_b_sweep(
    quotas: tuple[int, ...] = (2, 5, 8, 12, 16, 20),
    underlying: str = "fifo",
    config: ExperimentConfig | None = None,
) -> list[SweepPoint]:
    """Figs. 8/12: carbon vs ECT across CAP's minimum quota B."""
    config = config or ExperimentConfig(
        grid="DE",
        num_executors=25,
        workload=WorkloadSpec(family="tpch", num_jobs=20),
        seed=5,
    )
    trace = carbon_trace_for(config)
    base = run_experiment(
        replace(config, scheduler=underlying), carbon_trace=trace
    )
    points = []
    for quota in quotas:
        result = run_experiment(
            replace(config, scheduler=f"cap-{underlying}", cap_min_quota=quota),
            carbon_trace=trace,
        )
        m = compare_to_baseline(result, base)
        points.append(
            SweepPoint(float(quota), m.carbon_reduction_pct, m.ect_ratio, m.jct_ratio)
        )
    return points


# ----------------------------------------------------------------------
# Fig. 9 — per-job JCT vs per-job carbon quadrants
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PerJobPoint:
    scheduler: str
    trial: int
    jct_ratio: float
    carbon_ratio: float


def fig9_perjob_trials(
    num_trials: int = 8,
    config: ExperimentConfig | None = None,
) -> tuple[list[PerJobPoint], dict[str, dict[str, float]]]:
    """Fig. 9: per-trial average JCT and per-job carbon, both vs default.

    Returns the scatter points plus per-scheduler quadrant percentages
    (fraction of trials in each of the four quadrants around (1, 1)).
    """
    base_config = config or ExperimentConfig(
        mode="kubernetes",
        num_executors=24,
        per_job_cap=6,
        workload=WorkloadSpec(family="tpch", num_jobs=15),
    )
    points: list[PerJobPoint] = []
    for trial in range(num_trials):
        trial_config = replace(
            base_config,
            seed=trial,
            trace_start_step=trial * 977 % 20_000,
        )
        results = run_matchup(
            ["k8s-default", "pcaps", "cap-k8s-default"], trial_config
        )
        base = results["k8s-default"]
        base_carbon = np.mean(list(base.per_job_carbon().values()))
        for name in ("pcaps", "cap-k8s-default"):
            result = results[name]
            carbon = np.mean(list(result.per_job_carbon().values()))
            points.append(
                PerJobPoint(
                    scheduler=name,
                    trial=trial,
                    jct_ratio=result.avg_jct / base.avg_jct,
                    carbon_ratio=float(carbon / base_carbon),
                )
            )
    quadrants: dict[str, dict[str, float]] = {}
    for name in ("pcaps", "cap-k8s-default"):
        mine = [p for p in points if p.scheduler == name]
        n = max(len(mine), 1)
        quadrants[name] = {
            "less_carbon": 100.0 * sum(p.carbon_ratio < 1 for p in mine) / n,
            "less_carbon_and_faster": 100.0
            * sum(p.carbon_ratio < 1 and p.jct_ratio < 1 for p in mine)
            / n,
        }
    return points, quadrants


# ----------------------------------------------------------------------
# Figs. 10/14 — per-grid behaviour
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GridRow:
    grid: str
    coeff_var: float
    scheduler: str
    carbon_reduction_pct: float
    ect_ratio: float


def grid_comparison(
    mode: str = "standalone",
    schedulers: tuple[str, ...] = ("decima", "cap-fifo", "pcaps"),
    baseline: str = "fifo",
    num_executors: int = 25,
    num_jobs: int = 15,
    seed: int = 2,
) -> list[GridRow]:
    """Figs. 10/14: carbon reduction and ECT per grid region.

    The paper's observation: grids with higher coefficients of variation
    (more renewables) admit more carbon reduction.
    """
    rows = []
    for grid in GRID_CODES:
        config = ExperimentConfig(
            grid=grid,
            mode=mode,
            num_executors=num_executors,
            per_job_cap=max(2, num_executors // 4),
            workload=WorkloadSpec(family="tpch", num_jobs=num_jobs),
            seed=seed,
        )
        results = run_matchup(list(schedulers) + [baseline], config)
        base = results[baseline]
        cov = synthesize_trace(grid, hours=2000, seed=0).stats().coeff_var
        for name in schedulers:
            m = compare_to_baseline(results[name], base)
            rows.append(
                GridRow(
                    grid=grid,
                    coeff_var=cov,
                    scheduler=name,
                    carbon_reduction_pct=m.carbon_reduction_pct,
                    ect_ratio=m.ect_ratio,
                )
            )
    return rows


# ----------------------------------------------------------------------
# Fig. 13 — PCAPS vs CAP-Decima trade-off frontier
# ----------------------------------------------------------------------
def fig13_frontier(
    gammas: tuple[float, ...] = (0.2, 0.4, 0.5, 0.6, 0.8, 0.95),
    quotas: tuple[int, ...] = (2, 4, 6, 9, 13, 18),
    config: ExperimentConfig | None = None,
) -> dict[str, list[SweepPoint]]:
    """Fig. 13: carbon/ECT points for PCAPS (γ grid) vs CAP-Decima (B grid).

    Both families share the identical workload and the Decima baseline, so
    differences isolate the value of relative importance (Section 6.4).
    """
    config = config or ExperimentConfig(
        grid="DE",
        num_executors=25,
        workload=WorkloadSpec(family="tpch", num_jobs=20),
        seed=11,
    )
    trace = carbon_trace_for(config)
    base = run_experiment(replace(config, scheduler="decima"), carbon_trace=trace)
    pcaps_points = []
    for gamma in gammas:
        r = run_experiment(
            replace(config, scheduler="pcaps", gamma=gamma), carbon_trace=trace
        )
        m = compare_to_baseline(r, base)
        pcaps_points.append(
            SweepPoint(gamma, m.carbon_reduction_pct, m.ect_ratio, m.jct_ratio)
        )
    cap_points = []
    for quota in quotas:
        r = run_experiment(
            replace(config, scheduler="cap-decima", cap_min_quota=quota),
            carbon_trace=trace,
        )
        m = compare_to_baseline(r, base)
        cap_points.append(
            SweepPoint(float(quota), m.carbon_reduction_pct, m.ect_ratio, m.jct_ratio)
        )
    return {"pcaps": pcaps_points, "cap-decima": cap_points}


# ----------------------------------------------------------------------
# Fig. 15 — standalone FIFO vs Spark/Kubernetes default
# ----------------------------------------------------------------------
@dataclass
class Fig15Data:
    times: dict[str, np.ndarray]
    busy: dict[str, np.ndarray]
    jobs_in_system: dict[str, np.ndarray]
    results: dict[str, ExperimentResult]


def fig15_fifo_vs_k8s(
    num_executors: int = 25,
    num_jobs: int = 20,
    grid: str = "DE",
    seed: int = 4,
    resolution: float = 5.0,
) -> Fig15Data:
    """Fig. 15: identical batch under standalone FIFO vs the K8s default."""
    from repro.simulator.trace import jobs_in_system_series

    workload = WorkloadSpec(family="tpch", num_jobs=num_jobs)
    modes = {
        "fifo-standalone": ExperimentConfig(
            scheduler="fifo",
            grid=grid,
            mode="standalone",
            num_executors=num_executors,
            workload=workload,
            seed=seed,
        ),
        "k8s-default": ExperimentConfig(
            scheduler="k8s-default",
            grid=grid,
            mode="kubernetes",
            num_executors=num_executors,
            per_job_cap=max(2, num_executors // 4),
            workload=workload,
            seed=seed,
        ),
    }
    results = {name: run_experiment(cfg) for name, cfg in modes.items()}
    horizon = max(r.ect for r in results.values())
    times, busy, jobs_sys = {}, {}, {}
    for name, result in results.items():
        t, b = busy_executor_series(result.trace, t_end=horizon, resolution=resolution)
        times[name], busy[name] = t, b
        _, j = jobs_in_system_series(
            result.arrivals, result.finishes, t_end=horizon, resolution=resolution
        )
        jobs_sys[name] = j
    return Fig15Data(times=times, busy=busy, jobs_in_system=jobs_sys, results=results)


# ----------------------------------------------------------------------
# Figs. 16-19 — batch size and interarrival sweeps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LoadSweepRow:
    parameter: float
    scheduler: str
    carbon_reduction_pct: float
    ect_ratio: float
    jct_ratio: float


def jobcount_sweep(
    job_counts: tuple[int, ...] = (6, 12, 25, 50),
    schedulers: tuple[str, ...] = ("decima", "cap-fifo", "pcaps"),
    baseline: str = "fifo",
    mode: str = "standalone",
    num_executors: int = 25,
    seed: int = 6,
) -> list[LoadSweepRow]:
    """Figs. 16/17: metrics vs total number of jobs (DE grid)."""
    rows = []
    for count in job_counts:
        config = ExperimentConfig(
            grid="DE",
            mode=mode,
            num_executors=num_executors,
            per_job_cap=max(2, num_executors // 4),
            workload=WorkloadSpec(family="tpch", num_jobs=count),
            seed=seed,
        )
        results = run_matchup(list(schedulers) + [baseline], config)
        base = results[baseline]
        for name in schedulers:
            m = compare_to_baseline(results[name], base)
            rows.append(
                LoadSweepRow(
                    parameter=float(count),
                    scheduler=name,
                    carbon_reduction_pct=m.carbon_reduction_pct,
                    ect_ratio=m.ect_ratio,
                    jct_ratio=m.jct_ratio,
                )
            )
    return rows


def interarrival_sweep(
    interarrivals: tuple[float, ...] = (10.0, 20.0, 30.0, 60.0),
    schedulers: tuple[str, ...] = ("decima", "cap-fifo", "pcaps"),
    baseline: str = "fifo",
    mode: str = "standalone",
    num_executors: int = 25,
    num_jobs: int = 20,
    seed: int = 6,
) -> list[LoadSweepRow]:
    """Figs. 18/19: metrics vs Poisson mean interarrival time (DE grid)."""
    rows = []
    for gap in interarrivals:
        config = ExperimentConfig(
            grid="DE",
            mode=mode,
            num_executors=num_executors,
            per_job_cap=max(2, num_executors // 4),
            workload=WorkloadSpec(
                family="tpch", num_jobs=num_jobs, mean_interarrival=gap
            ),
            seed=seed,
        )
        results = run_matchup(list(schedulers) + [baseline], config)
        base = results[baseline]
        for name in schedulers:
            m = compare_to_baseline(results[name], base)
            rows.append(
                LoadSweepRow(
                    parameter=gap,
                    scheduler=name,
                    carbon_reduction_pct=m.carbon_reduction_pct,
                    ect_ratio=m.ect_ratio,
                    jct_ratio=m.jct_ratio,
                )
            )
    return rows


# ----------------------------------------------------------------------
# Fig. 20 — scheduler invocation latency
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LatencyRow:
    scheduler: str
    queued_jobs: int
    avg_latency_ms: float
    invocations: int


def latency_profile(
    queue_lengths: tuple[int, ...] = (1, 5, 10, 25),
    schedulers: tuple[str, ...] = ("fifo", "cap-fifo", "decima", "pcaps"),
    num_executors: int = 25,
    grid: str = "DE",
) -> list[LatencyRow]:
    """Fig. 20: mean scheduler-invocation latency vs queue length.

    All jobs arrive at t=0 so the scheduler faces ``N`` queued jobs; latency
    is wall-clock time inside ``select`` per invocation.
    """
    rows = []
    for count in queue_lengths:
        for name in schedulers:
            config = ExperimentConfig(
                scheduler=name,
                grid=grid,
                num_executors=num_executors,
                workload=WorkloadSpec(
                    family="tpch",
                    num_jobs=count,
                    mean_interarrival=1e-6,  # effectively simultaneous
                    tpch_scales=(2,),
                ),
                seed=1,
                measure_latency=True,
            )
            result = run_experiment(config)
            rows.append(
                LatencyRow(
                    scheduler=name,
                    queued_jobs=count,
                    avg_latency_ms=result.avg_scheduler_latency_s * 1e3,
                    invocations=result.scheduler_invocations,
                )
            )
    return rows
