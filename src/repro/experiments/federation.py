"""Federation experiments: routing matchups and single-region baselines.

The geo analogue of :mod:`repro.experiments.runner`: a declarative
:class:`~repro.geo.config.FederationConfig` names one federation trial, and
the helpers here run the comparisons the geo experiments report — several
routing policies over the *identical* workload (the spatial version of the
paper's normalized matchups), and the whole workload on each region alone
(what a single-cluster deployment in that grid would have emitted).
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Iterable

from repro.experiments.runner import run_experiment
from repro.simulator.metrics import ExperimentResult

# repro.geo.config imports repro.experiments.runner, and importing it (or
# any repro.experiments submodule) initializes this package first — so geo
# imports here must stay inside function bodies to avoid a circular import
# when repro.geo is the first module loaded.
if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geo.config import FederationConfig
    from repro.geo.result import FederationResult


def run_routing_matchup(
    config: FederationConfig,
    routings: Iterable[str] | None = None,
) -> dict[str, FederationResult]:
    """Run several routing policies on the identical workload and regions.

    The workload, origins, and per-region traces are all derived from
    ``config``'s seed, so every policy sees the same arrivals — differences
    in the results are attributable to routing alone. ``routings`` defaults
    to every policy in :data:`repro.geo.routing.ROUTING_POLICY_NAMES`.
    """
    from repro.geo.federation import run_federation
    from repro.geo.routing import ROUTING_POLICY_NAMES

    if routings is None:
        routings = ROUTING_POLICY_NAMES
    return {
        routing: run_federation(config.with_routing(routing))
        for routing in routings
    }


def single_region_results(
    config: FederationConfig,
) -> dict[str, ExperimentResult]:
    """The whole workload on each region's cluster alone, per region.

    The no-federation counterfactual: what a deployment that owns only the
    ``name`` region's cluster would measure running the entire batch there.
    Useful as the denominator for "what does spatial shifting buy on top of
    temporal shifting" comparisons.
    """
    out: dict[str, ExperimentResult] = {}
    for region in config.regions:
        exp_config = region.to_experiment_config(config.workload, config.seed)
        out[region.name] = run_experiment(exp_config)
    return out


def single_region_carbon_g(
    config: FederationConfig,
) -> dict[str, float]:
    """Per-region grams for running the whole batch in that region alone."""
    power = config.executor_power_kw
    return {
        name: result.carbon_footprint * power / 3600.0
        for name, result in single_region_results(config).items()
    }


def scaled_single_region(
    config: FederationConfig, name: str
) -> FederationConfig:
    """A one-region federation over the named member (capacity-matched).

    Keeps the federation workload and seed but concentrates the *total*
    federated executor count in the named region, so "federated vs. one big
    cluster in grid X" comparisons hold capacity constant.
    """
    index = config.region_index(name)
    total = sum(r.num_executors for r in config.regions)
    region = replace(config.regions[index], num_executors=total)
    return replace(
        config,
        regions=(region,),
        routing="round-robin",
        origin_region=region.name,
    )
