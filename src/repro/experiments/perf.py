"""Engine-throughput measurement harness (``repro perf``).

The paper's evaluation is thousands of event-driven trials, so per-trial
engine throughput is the lever on campaign wall-time. This module times
complete simulated trials across a scheduler × job-count grid and reports:

- **events/s** — scheduling events (arrivals, task completions, carbon
  steps) processed per second of wall time;
- **tasks/s** — task placements per second of wall time;
- **select latency** — mean wall-clock per scheduler invocation, the
  paper's Fig. 20 metric (measured via ``measure_latency=True``);
- **carbon tally time** — the ex-post accounting pass, timed separately;
- **campaign throughput** — trials/min through the full campaign stack
  (spec expansion, content-addressed keys, store append), measured by
  running the ``smoke`` campaign preset cold against a throwaway store.

Results land in ``BENCH_engine.json`` so every future change has a
regression baseline to diff against. :data:`PRE_REFACTOR_BASELINE_S`
records the wall times of the same scenarios measured on the pre-fast-path
engine (commit ``50c23a5``); the report computes speedups against it when
scenario names match.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro import __version__
from repro.experiments.runner import (
    SCHEDULER_NAMES,
    ExperimentConfig,
    run_experiment,
)
from repro.workloads.batch import WorkloadSpec
from repro.ioutil import atomic_write_text

DEFAULT_OUTPUT = "BENCH_engine.json"

#: Wall seconds per scenario on the pre-refactor engine (quadratic frontier
#: rebuilds, uncached scheduler state, per-segment carbon integration),
#: measured at commit 50c23a5 on the development container. Machine-specific
#: — meaningful for before/after ratios measured on comparable hardware, not
#: as absolute targets.
PRE_REFACTOR_BASELINE_S: dict[str, float] = {
    "fifo-50": 0.198,
    "fifo-100": 0.306,
    "fifo-200": 0.559,
    "decima-50": 0.130,
    "decima-100": 0.295,
    "decima-200": 0.607,
    "pcaps-50": 2.179,
    "pcaps-100": 3.028,
    "pcaps-200": 17.345,
}


@dataclass(frozen=True)
class PerfScenario:
    """One timed trial: a scheduler on a sized workload."""

    name: str
    scheduler: str
    num_jobs: int
    num_executors: int = 50
    family: str = "tpch"
    seed: int = 0
    trace_hours: int = 2000
    mean_interarrival: float = 30.0

    def config(self) -> ExperimentConfig:
        return ExperimentConfig(
            scheduler=self.scheduler,
            num_executors=self.num_executors,
            workload=WorkloadSpec(
                family=self.family,
                num_jobs=self.num_jobs,
                mean_interarrival=self.mean_interarrival,
            ),
            seed=self.seed,
            trace_hours=self.trace_hours,
            measure_latency=True,
        )


@dataclass
class PerfMeasurement:
    """Everything measured from one timed trial."""

    name: str
    scheduler: str
    num_jobs: int
    num_executors: int
    wall_s: float
    events: int
    events_per_s: float
    tasks: int
    tasks_per_s: float
    select_calls: int
    avg_select_latency_ms: float
    carbon_tally_s: float
    ect: float
    carbon: float
    speedup_vs_pre_refactor: float | None = field(default=None)
    #: Frontier-cache effectiveness (``None`` unless the scenario was run
    #: with ``collect_cache_stats=True``; collected on a second, untimed
    #: pass so the timed wall stays observation-free).
    frontier_matrix_hit_rate: float | None = field(default=None)
    frontier_column_hit_rate: float | None = field(default=None)
    ready_cache_hit_rate: float | None = field(default=None)


DEFAULT_SCHEDULERS: tuple[str, ...] = ("fifo", "decima", "pcaps")
DEFAULT_JOB_COUNTS: tuple[int, ...] = (50, 100, 200)


def build_scenarios(
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    job_counts: Sequence[int] = DEFAULT_JOB_COUNTS,
    num_executors: int = 50,
) -> list[PerfScenario]:
    """The scheduler × job-count measurement grid."""
    unknown = [s for s in schedulers if s not in SCHEDULER_NAMES]
    if unknown:
        raise ValueError(
            f"unknown schedulers {unknown}; choose from {SCHEDULER_NAMES}"
        )
    return [
        PerfScenario(
            name=f"{scheduler}-{jobs}",
            scheduler=scheduler,
            num_jobs=jobs,
            num_executors=num_executors,
        )
        for scheduler in schedulers
        for jobs in job_counts
    ]


def smoke_scenarios() -> list[PerfScenario]:
    """A seconds-scale grid for CI: every default scheduler, tiny batches."""
    return [
        PerfScenario(
            name=f"smoke-{scheduler}-10",
            scheduler=scheduler,
            num_jobs=10,
            num_executors=10,
            trace_hours=300,
        )
        for scheduler in DEFAULT_SCHEDULERS
    ]


def _cache_hit_rates(
    config: ExperimentConfig,
) -> tuple[float | None, float | None, float | None]:
    """(matrix, column, ready) hit rates from one untimed observed run."""
    from repro.obs.observer import collecting, hit_rate

    with collecting("perf-cache-stats") as observer:
        run_experiment(config)
    registry = observer.registry

    def rate(base: str) -> float | None:
        return hit_rate(
            registry.value(f"{base}.hits"), registry.value(f"{base}.misses")
        )

    return (
        rate("engine.cache.matrix"),
        rate("engine.cache.column"),
        rate("engine.cache.ready"),
    )


def run_scenario(
    scenario: PerfScenario, collect_cache_stats: bool = False
) -> PerfMeasurement:
    """Run one trial end-to-end and measure it.

    With ``collect_cache_stats`` the scenario runs a *second* time under an
    observer to read the engine's frontier-cache hit rates; the timed run
    stays obs-off, so wall times (and the perf gate built on them) are
    never contaminated by instrumentation.
    """
    config = scenario.config()
    t0 = time.perf_counter()
    result = run_experiment(config)
    wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    carbon = result.carbon_footprint
    carbon_tally_s = time.perf_counter() - t0
    matrix_rate = column_rate = ready_rate = None
    if collect_cache_stats:
        matrix_rate, column_rate, ready_rate = _cache_hit_rates(config)
    return PerfMeasurement(
        name=scenario.name,
        scheduler=scenario.scheduler,
        num_jobs=scenario.num_jobs,
        num_executors=scenario.num_executors,
        wall_s=wall,
        events=result.events_processed,
        events_per_s=result.events_processed / wall if wall > 0 else 0.0,
        tasks=len(result.trace.tasks),
        tasks_per_s=len(result.trace.tasks) / wall if wall > 0 else 0.0,
        select_calls=result.scheduler_invocations,
        avg_select_latency_ms=result.avg_scheduler_latency_s * 1e3,
        carbon_tally_s=carbon_tally_s,
        ect=result.ect,
        carbon=carbon,
        speedup_vs_pre_refactor=(
            round(PRE_REFACTOR_BASELINE_S[scenario.name] / wall, 2)
            if scenario.name in PRE_REFACTOR_BASELINE_S and wall > 0
            else None
        ),
        frontier_matrix_hit_rate=matrix_rate,
        frontier_column_hit_rate=column_rate,
        ready_cache_hit_rate=ready_rate,
    )


def measure_campaign_throughput(
    preset: str = "smoke", workers: int = 0
) -> dict:
    """Trials/min through the campaign stack, measured cold.

    Runs the named campaign preset against a throwaway store (no cache
    hits — every trial simulates), so the number includes spec expansion,
    trial keying, pool dispatch, and store appends, not just raw engine
    time. ``workers=0`` runs inline; pass a pool size to measure the
    parallel path instead.
    """
    import tempfile

    from repro.campaign import CampaignRunner, ResultStore, campaign_presets

    spec = campaign_presets()[preset]
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "perf-campaign.jsonl")
        runner = CampaignRunner(store, workers=workers)
        t0 = time.perf_counter()
        run = runner.run(spec)
        wall = time.perf_counter() - t0
    trials = len(run.records)
    return {
        "preset": preset,
        "workers": workers,
        "trials": trials,
        "failures": len(run.failures),
        "wall_s": wall,
        "trials_per_min": trials / wall * 60.0 if wall > 0 else 0.0,
    }


#: The aspirational batched-replicate speedup from the roadmap's "batched
#: multi-seed trials" line, recorded alongside every measurement so the
#: gap stays visible. At replicate width 8 the measured ratio on CPython
#: is ~1.0× — per-request Python glue (generator suspension, cache
#: bookkeeping, per-block tails) dominates the numpy dispatch that
#: stacking amortizes; see docs/batching.md for the width curve — so the
#: enforced benchmark gate is a *no-regression floor*, not this target.
BATCHED_SPEEDUP_TARGET = 1.5


def measure_batched_speedup(
    scheduler: str = "pcaps",
    num_jobs: int = 200,
    replicates: int = 8,
    rounds: int = 3,
    num_executors: int = 50,
) -> dict:
    """Paired sequential-vs-batched replicate timing, best-of-``rounds``.

    Runs the same ``replicates``-seed batch both ways, alternating
    sequential and batched *within* every round, and takes each side's
    best across rounds. The pairing matters: on shared/virtualized
    hardware consecutive identical runs vary by tens of percent, so only
    an interleaved best-of-N ratio measured in one process is meaningful
    — two separate one-shot timings mostly measure machine weather.
    """
    from dataclasses import replace

    from repro.batch import run_batched

    base = PerfScenario(
        name=f"{scheduler}-{num_jobs}",
        scheduler=scheduler,
        num_jobs=num_jobs,
        num_executors=num_executors,
    ).config()
    configs = [replace(base, seed=seed) for seed in range(replicates)]
    sequential_walls, batched_walls = [], []
    for _ in range(rounds):
        t0 = time.perf_counter()
        for config in configs:
            run_experiment(config)
        sequential_walls.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_batched(configs)
        batched_walls.append(time.perf_counter() - t0)
    sequential_s = min(sequential_walls)
    batched_s = min(batched_walls)
    return {
        "scenario": f"{scheduler}-{num_jobs}x{replicates}",
        "scheduler": scheduler,
        "num_jobs": num_jobs,
        "replicates": replicates,
        "rounds": rounds,
        "sequential_s": round(sequential_s, 3),
        "batched_s": round(batched_s, 3),
        "speedup": (
            round(sequential_s / batched_s, 3) if batched_s > 0 else 0.0
        ),
        "sequential_trials_per_min": (
            round(replicates / sequential_s * 60.0, 2)
            if sequential_s > 0
            else 0.0
        ),
        "batched_trials_per_min": (
            round(replicates / batched_s * 60.0, 2) if batched_s > 0 else 0.0
        ),
        "target_speedup": BATCHED_SPEEDUP_TARGET,
    }


def run_suite(
    scenarios: Iterable[PerfScenario], collect_cache_stats: bool = True
) -> list[PerfMeasurement]:
    return [
        run_scenario(scenario, collect_cache_stats=collect_cache_stats)
        for scenario in scenarios
    ]


def write_report(
    measurements: Sequence[PerfMeasurement],
    path: str | Path,
    campaign_throughput: dict | None = None,
    batched_replicates: dict | None = None,
) -> dict:
    """Serialize measurements (plus provenance) to ``path``; returns the doc."""
    doc = {
        "benchmark": "engine-throughput",
        "version": __version__,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "pre_refactor_baseline_s": PRE_REFACTOR_BASELINE_S,
        "scenarios": [asdict(m) for m in measurements],
    }
    if campaign_throughput is not None:
        doc["campaign_throughput"] = campaign_throughput
    if batched_replicates is not None:
        doc["batched_replicates"] = batched_replicates
    atomic_write_text(Path(path), json.dumps(doc, indent=1) + "\n")
    return doc


def format_report(measurements: Sequence[PerfMeasurement]) -> str:
    """Human-readable table of a measurement run."""
    lines = [
        f"{'scenario':<18} {'wall_s':>8} {'events/s':>10} {'tasks/s':>9} "
        f"{'select_ms':>10} {'speedup':>8} {'matrix%':>8}"
    ]
    for m in measurements:
        speedup = (
            f"{m.speedup_vs_pre_refactor:.1f}x"
            if m.speedup_vs_pre_refactor is not None
            else "-"
        )
        matrix = (
            f"{m.frontier_matrix_hit_rate:.0%}"
            if m.frontier_matrix_hit_rate is not None
            else "-"
        )
        lines.append(
            f"{m.name:<18} {m.wall_s:>8.3f} {m.events_per_s:>10.0f} "
            f"{m.tasks_per_s:>9.0f} {m.avg_select_latency_ms:>10.3f} "
            f"{speedup:>8} {matrix:>8}"
        )
    return "\n".join(lines)
