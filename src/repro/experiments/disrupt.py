"""Disruption experiments: resilience matchups under a pinned schedule.

The disrupted analogue of :mod:`repro.experiments.federation`: one
federation config plus one :class:`~repro.disrupt.schedule.DisruptionSchedule`
defines a scenario, and the matchup runs three variants on the *identical*
workload, origins, traces, and disruptions:

- ``undisrupted`` — the schedule removed (the ceiling);
- ``no-failover``  — disruptions hit, the system does not react: jobs
  routed to a down region queue there until recovery;
- ``failover``     — the routing wrapper diverts arrivals away from down
  regions and mid-trial migration relocates queued jobs at each outage.

Differences between the variants are attributable to the reaction
machinery alone — the comparison the resilience benchmark and the
``repro disrupt`` CLI report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.disrupt.metrics import (
    DisruptionReport,
    federation_disruption_report,
    jobs_completed_by,
)
from repro.disrupt.schedule import DisruptionSchedule

# Same circular-import caveat as repro.experiments.federation: repro.geo
# imports repro.experiments.runner, so geo imports stay in function bodies.
if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geo.config import FederationConfig
    from repro.geo.result import FederationResult

#: Variant names, in reporting order.
DISRUPT_VARIANTS: tuple[str, ...] = ("undisrupted", "no-failover", "failover")

#: Deadline slack for the "jobs completed in time" goodput metric: a job
#: counts as on-time if it finishes within this factor of the undisrupted
#: variant's ECT.
DEADLINE_FACTOR = 1.25


def run_disruption_matchup(
    config: "FederationConfig",
    schedule: DisruptionSchedule | None = None,
) -> dict[str, "FederationResult"]:
    """Run the three resilience variants of one disrupted scenario.

    ``schedule`` defaults to ``config.disruptions`` (one of the two must
    provide a non-empty schedule). Every variant sees the identical
    workload and per-region traces; keys follow :data:`DISRUPT_VARIANTS`.
    """
    from repro.geo.federation import run_federation

    if schedule is None:
        schedule = config.disruptions
    if schedule is None or not schedule:
        raise ValueError("a disruption matchup needs a non-empty schedule")
    return {
        "undisrupted": run_federation(config.with_disruptions(None)),
        "no-failover": run_federation(
            config.with_disruptions(schedule, failover=False, migrate=False)
        ),
        "failover": run_federation(
            config.with_disruptions(schedule, failover=True, migrate=True)
        ),
    }


def disruption_matchup_reports(
    results: dict[str, "FederationResult"],
    schedule: DisruptionSchedule,
    deadline_factor: float = DEADLINE_FACTOR,
) -> dict[str, DisruptionReport]:
    """Per-variant resilience reports on a common completion deadline.

    The deadline is :func:`matchup_deadline`, so the disrupted variants'
    ``jobs_completed`` counts are comparable — the acceptance property is
    ``failover >= no-failover`` on that count.
    """
    deadline = matchup_deadline(results, deadline_factor)
    return {
        name: federation_disruption_report(
            result,
            schedule if name != "undisrupted" else DisruptionSchedule.empty(),
            deadline=deadline,
        )
        for name, result in results.items()
    }


def matchup_deadline(
    results: dict[str, "FederationResult"],
    deadline_factor: float = DEADLINE_FACTOR,
) -> float:
    """The common deadline the matchup's completion counts use."""
    return deadline_factor * results["undisrupted"].ect


def format_disruption_matchup(
    results: dict[str, "FederationResult"],
    reports: dict[str, DisruptionReport],
    deadline: float,
) -> str:
    """ASCII table of the three variants (CLI + benchmark output)."""
    lines = [
        f"{'variant':<14} {'carbon_g':>10} {'ECT':>9} {'on-time':>8} "
        f"{'preempt':>8} {'reroute':>8} {'migrate':>8} {'goodput':>8}"
    ]
    for name in DISRUPT_VARIANTS:
        if name not in results:
            continue
        result, report = results[name], reports[name]
        on_time = jobs_completed_by(result.finishes, deadline)
        lines.append(
            f"{name:<14} {result.total_carbon_g:>10.1f} {result.ect:>9.1f} "
            f"{on_time:>3}/{result.num_jobs:<4} "
            f"{report.preempted_tasks:>8} {report.rerouted_jobs:>8} "
            f"{report.migrated_jobs:>8} {report.goodput:>8.3f}"
        )
    return "\n".join(lines)
