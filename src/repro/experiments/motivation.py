"""The Figure 1 motivating example.

Figure 1 of the paper walks one small DAG through four schedules against an
18-hour carbon trace on two machines: carbon-agnostic FIFO, the
time-optimal schedule (T-OPT), the carbon-optimal schedule under an 18-hour
deadline (C-OPT), and PCAPS. The paper's headline numbers for the figure:
C-OPT cuts carbon 51.2% over FIFO at +28.5% time; PCAPS cuts carbon 23.1%
while finishing 7% *earlier* than FIFO.

We rebuild the setting: a 7-stage DAG whose "green and purple" stages form
the bottleneck chain, and a diurnal 18-hour trace with a pronounced
high-carbon ridge in the middle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.carbon.api import CarbonIntensityAPI
from repro.carbon.trace import CarbonTrace
from repro.core.pcaps import PCAPSScheduler
from repro.dag.graph import JobDAG, Stage
from repro.schedulers.decima import DecimaScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.optimal import (
    optimal_carbon_schedule,
    optimal_time_schedule,
)
from repro.simulator.engine import ClusterConfig, Simulation
from repro.workloads.arrivals import JobSubmission

#: Simulated seconds per "hour" in the motivating example.
STEP_SECONDS = 60.0
NUM_MACHINES = 2
DEADLINE_HOURS = 18


def motivating_dag() -> JobDAG:
    """The Fig. 1-style DAG: a bottleneck chain plus deferrable side work.

    Stage names carry the figure's colors: the *green* and *purple* stages
    form the long chain that T-OPT and PCAPS must prioritize. The side
    stages carry lower ids, so a naive FIFO scheduler starts them first and
    delays the bottleneck chain — the figure's motivating mistake.
    """
    h = STEP_SECONDS  # one "hour"
    return JobDAG(
        [
            Stage(0, 1, 1 * h, name="blue-root"),
            Stage(1, 1, 1 * h, parents=(0,), name="yellow-side-a"),
            Stage(2, 1, 2 * h, parents=(0,), name="yellow-side-b"),
            Stage(3, 1, 3 * h, parents=(0,), name="yellow-side-c"),
            Stage(4, 1, 5 * h, parents=(0,), name="green-bottleneck"),
            Stage(5, 1, 4 * h, parents=(4,), name="purple-bottleneck"),
            Stage(6, 1, 2 * h, parents=(1, 2, 3, 5), name="red-sink"),
        ],
        name="fig1-motivating",
    )


def motivating_trace() -> CarbonTrace:
    """An 18-hour trace: a high-carbon morning, then a low-carbon evening.

    The decline mirrors e.g. solar coming online: waiting is rewarded, which
    is what separates the carbon-aware policies from FIFO.
    """
    hours = np.arange(DEADLINE_HOURS)
    high = 390.0 - 6.0 * hours  # slowly declining plateau
    low = 75.0 + 2.0 * (hours - 9)
    values = np.where(hours < 9, high, low)
    return CarbonTrace(values, step_seconds=STEP_SECONDS, name="fig1")


@dataclass(frozen=True)
class MotivationRow:
    """One schedule's outcome in the Fig. 1 comparison."""

    policy: str
    completion_hours: float
    carbon: float
    carbon_vs_fifo_pct: float  # negative = reduction
    time_vs_fifo_pct: float  # negative = faster


def _simulate_policy(scheduler, trace: CarbonTrace) -> tuple[float, float]:
    """Run one simulator policy on the motivating job; returns (hours, carbon)."""
    submission = JobSubmission(arrival_time=0.0, dag=motivating_dag(), job_id=0)
    sim = Simulation(
        config=ClusterConfig(
            num_executors=NUM_MACHINES, executor_move_delay=0.0
        ),
        scheduler=scheduler,
        carbon_api=CarbonIntensityAPI(trace, lookahead_steps=DEADLINE_HOURS),
    )
    result = sim.run([submission])
    return result.ect / STEP_SECONDS, result.carbon_footprint / STEP_SECONDS


def fig1_comparison(gamma: float = 0.5, seed: int = 0) -> list[MotivationRow]:
    """Reproduce the four-policy comparison of Figure 1.

    Returns rows for FIFO, T-OPT, C-OPT (18 h deadline) and PCAPS; carbon
    and completion time are reported relative to FIFO, as in the figure.
    """
    trace = motivating_trace()
    dag = motivating_dag()
    series = trace.values

    fifo_hours, fifo_carbon = _simulate_policy(FIFOScheduler(), trace)
    pcaps_hours, pcaps_carbon = _simulate_policy(
        PCAPSScheduler(DecimaScheduler(seed=seed), gamma=gamma), trace
    )
    t_opt = optimal_time_schedule(
        dag, NUM_MACHINES, series, step_seconds=STEP_SECONDS
    )
    c_opt = optimal_carbon_schedule(
        dag, NUM_MACHINES, series, deadline_steps=DEADLINE_HOURS,
        step_seconds=STEP_SECONDS,
    )

    outcomes = [
        ("FIFO", fifo_hours, fifo_carbon),
        ("T-OPT", float(t_opt.makespan_steps), t_opt.carbon_cost),
        ("C-OPT", float(c_opt.makespan_steps), c_opt.carbon_cost),
        (f"PCAPS(γ={gamma:g})", pcaps_hours, pcaps_carbon),
    ]
    rows = []
    for policy, hours, carbon in outcomes:
        rows.append(
            MotivationRow(
                policy=policy,
                completion_hours=hours,
                carbon=carbon,
                carbon_vs_fifo_pct=100.0 * (carbon / fifo_carbon - 1.0),
                time_vs_fifo_pct=100.0 * (hours / fifo_hours - 1.0),
            )
        )
    return rows
