"""Experiment harness: one entry point per paper table and figure.

:mod:`~repro.experiments.runner` turns a declarative
:class:`~repro.experiments.runner.ExperimentConfig` into an
:class:`~repro.simulator.metrics.ExperimentResult`;
:mod:`~repro.experiments.tables` and :mod:`~repro.experiments.figures`
assemble the normalized rows/series each paper artifact reports; and
:mod:`~repro.experiments.motivation` holds the Fig. 1 motivating example.
"""

from repro.experiments.runner import (
    SCHEDULER_NAMES,
    ExperimentConfig,
    build_scheduler,
    run_experiment,
    run_matchup,
)
from repro.experiments.motivation import (
    fig1_comparison,
    motivating_dag,
    motivating_trace,
)

__all__ = [
    "ExperimentConfig",
    "SCHEDULER_NAMES",
    "build_scheduler",
    "fig1_comparison",
    "motivating_dag",
    "motivating_trace",
    "run_experiment",
    "run_matchup",
]
