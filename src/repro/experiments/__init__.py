"""Experiment harness: one entry point per paper table and figure.

:mod:`~repro.experiments.runner` turns a declarative
:class:`~repro.experiments.runner.ExperimentConfig` into an
:class:`~repro.simulator.metrics.ExperimentResult`;
:mod:`~repro.experiments.tables` and :mod:`~repro.experiments.figures`
assemble the normalized rows/series each paper artifact reports;
:mod:`~repro.experiments.motivation` holds the Fig. 1 motivating example;
:mod:`~repro.experiments.perf` times engine throughput across a
scheduler × job-count grid (``repro perf``, ``BENCH_engine.json``); and
:mod:`~repro.experiments.federation` runs the geo experiments — routing
matchups over identical workloads and single-region counterfactuals.
"""

from repro.experiments.federation import (
    run_routing_matchup,
    scaled_single_region,
    single_region_carbon_g,
    single_region_results,
)
from repro.experiments.runner import (
    SCHEDULER_NAMES,
    ExperimentConfig,
    build_scheduler,
    run_experiment,
    run_matchup,
)
from repro.experiments.motivation import (
    fig1_comparison,
    motivating_dag,
    motivating_trace,
)
from repro.experiments.perf import (
    PerfMeasurement,
    PerfScenario,
    build_scenarios,
    run_scenario,
    run_suite,
    smoke_scenarios,
    write_report,
)

__all__ = [
    "ExperimentConfig",
    "PerfMeasurement",
    "PerfScenario",
    "SCHEDULER_NAMES",
    "build_scenarios",
    "build_scheduler",
    "fig1_comparison",
    "motivating_dag",
    "motivating_trace",
    "run_experiment",
    "run_matchup",
    "run_routing_matchup",
    "run_scenario",
    "scaled_single_region",
    "single_region_carbon_g",
    "single_region_results",
    "run_suite",
    "smoke_scenarios",
    "write_report",
]
