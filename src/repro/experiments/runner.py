"""Declarative experiment runner.

Every paper experiment is "a scheduler (or scheduler + wrapper) on a cluster
config, a workload batch, and a carbon trace slice". An
:class:`ExperimentConfig` names those choices; :func:`run_experiment`
materializes and runs one; :func:`run_matchup` runs several schedulers on
the *identical* workload and trace (the paper's normalized comparisons
require identical batches — Appendix A.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache

from repro.carbon.api import CarbonIntensityAPI
from repro.carbon.grids import synthesize_trace
from repro.carbon.trace import CarbonTrace
from repro.core.cap import CAPProvisioner
from repro.core.pcaps import PCAPSScheduler
from repro.schedulers.decima import DecimaScheduler
from repro.schedulers.fifo import FIFOScheduler, KubernetesDefaultScheduler
from repro.schedulers.greenhadoop import GreenHadoopProvisioner
from repro.schedulers.weighted_fair import WeightedFairScheduler
from repro.simulator.engine import ClusterConfig, Simulation
from repro.simulator.interfaces import Provisioner, StageScheduler
from repro.simulator.metrics import ExperimentResult
from repro.workloads.arrivals import JobSubmission
from repro.workloads.batch import WorkloadSpec, build_workload

#: Names accepted by :func:`build_scheduler`. ``cap-*`` pairs the CAP
#: provisioner with the named underlying scheduler (the paper evaluates
#: CAP on FIFO, Weighted Fair, and Decima).
SCHEDULER_NAMES: tuple[str, ...] = (
    "fifo",
    "k8s-default",
    "weighted-fair",
    "decima",
    "greenhadoop",
    "cap-fifo",
    "cap-k8s-default",
    "cap-weighted-fair",
    "cap-decima",
    "pcaps",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment: scheduler × cluster × workload × carbon slice.

    Parameters mirror the paper's experimental knobs:

    - ``scheduler``: one of :data:`SCHEDULER_NAMES`.
    - ``grid``: Table 1 grid code; ignored if ``carbon_trace`` is supplied
      to :func:`run_experiment` directly.
    - ``trace_hours`` / ``trace_start_step``: the slice of the (synthetic)
      3-year trace to replay; prototype trials start "at a uniformly
      randomly chosen time in the carbon trace".
    - ``gamma``: PCAPS carbon-awareness (moderate = 0.5).
    - ``cap_min_quota``: CAP's B; defaults to 20% of the cluster, the
      paper's moderate setting (B=20 on K=100).
    - ``gh_theta``: GreenHadoop's carbon-awareness knob.
    - ``mode``: ``"standalone"`` (simulator experiments, Table 3) or
      ``"kubernetes"`` (prototype-style experiments, Table 2).
    """

    scheduler: str = "fifo"
    grid: str = "DE"
    num_executors: int = 50
    mode: str = "standalone"
    per_job_cap: int = 25
    executor_move_delay: float = 0.5
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    trace_hours: int = 240
    trace_start_step: int = 0
    gamma: float = 0.5
    cap_min_quota: int | None = None
    gh_theta: float = 0.5
    seed: int = 0
    measure_latency: bool = False

    def __post_init__(self) -> None:
        if self.scheduler not in SCHEDULER_NAMES:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; choose from {SCHEDULER_NAMES}"
            )
        if self.mode not in ("standalone", "kubernetes"):
            raise ValueError("mode must be 'standalone' or 'kubernetes'")

    def with_scheduler(self, name: str) -> "ExperimentConfig":
        return replace(self, scheduler=name)


def build_scheduler(
    config: ExperimentConfig, carbon_trace: CarbonTrace
) -> tuple[StageScheduler, Provisioner | None]:
    """Instantiate the scheduler (and provisioner) a config names."""
    name = config.scheduler
    seed = config.seed
    base_schedulers = {
        "fifo": lambda: FIFOScheduler(),
        "k8s-default": lambda: KubernetesDefaultScheduler(),
        "weighted-fair": lambda: WeightedFairScheduler(),
        "decima": lambda: DecimaScheduler(seed=seed),
    }
    min_quota = config.cap_min_quota
    if min_quota is None:
        min_quota = max(1, config.num_executors // 5)  # paper's 20%

    if name in base_schedulers:
        return base_schedulers[name](), None
    if name == "greenhadoop":
        return FIFOScheduler(), GreenHadoopProvisioner(
            carbon_trace, theta=config.gh_theta
        )
    if name.startswith("cap-"):
        underlying = name.removeprefix("cap-")
        if underlying not in base_schedulers:
            raise ValueError(f"CAP cannot wrap unknown scheduler {underlying!r}")
        return base_schedulers[underlying](), CAPProvisioner(
            total_executors=config.num_executors, min_quota=min_quota
        )
    if name == "pcaps":
        return (
            PCAPSScheduler(DecimaScheduler(seed=seed), gamma=config.gamma),
            None,
        )
    raise ValueError(f"unknown scheduler {name!r}")  # pragma: no cover


@lru_cache(maxsize=None)
def _full_synthetic_trace(grid: str) -> CarbonTrace:
    """Memoized 3-year trace per grid — slicing it per config is cheap,
    synthesizing it per trial (e.g. inside campaign workers) is not."""
    return synthesize_trace(grid, seed=0)


@lru_cache(maxsize=256)
def _memoized_workload(
    spec: WorkloadSpec, seed: int | None
) -> tuple[JobSubmission, ...]:
    """Memoized batch synthesis per ``(spec, seed)``.

    Workload synthesis dominates Decima-scale sweeps (ROADMAP hot spot) and
    federation/campaign runs re-request the identical batch once per region
    or per policy. ``build_workload`` is a pure function of ``(spec, seed)``,
    so the cached tuple is exactly the batch a fresh synthesis would return;
    submissions are frozen and DAGs are never mutated by the engine, so
    sharing them across trials is safe. Callers get a fresh list.
    """
    return tuple(build_workload(spec, seed=seed))


def memoized_workload(
    spec: WorkloadSpec, seed: int | None = 0
) -> list[JobSubmission]:
    """Like :func:`repro.workloads.batch.build_workload`, but memoized."""
    return list(_memoized_workload(spec, seed))


def workload_for(config: ExperimentConfig) -> list[JobSubmission]:
    """The (memoized) job batch a config names."""
    return memoized_workload(config.workload, config.seed)


def carbon_trace_for(config: ExperimentConfig) -> CarbonTrace:
    """The carbon slice a config names (synthesized deterministically)."""
    return _full_synthetic_trace(config.grid).slice(
        config.trace_start_step, config.trace_hours
    )


def simulation_for(
    config: ExperimentConfig,
    carbon_trace: CarbonTrace | None = None,
) -> Simulation:
    """Materialize the :class:`Simulation` a config names, unrun.

    :func:`run_experiment` is exactly ``simulation_for(config).run(
    workload_for(config))``; checkpointing campaign workers use this to
    drive the same simulation through a :class:`~repro.simulator.engine.
    SimulationStepper` instead, so both paths stay bit-identical by
    construction.
    """
    trace = carbon_trace if carbon_trace is not None else carbon_trace_for(config)
    scheduler, provisioner = build_scheduler(config, trace)
    cluster = ClusterConfig(
        num_executors=config.num_executors,
        executor_move_delay=config.executor_move_delay,
        per_job_executor_cap=(
            config.per_job_cap if config.mode == "kubernetes" else None
        ),
        mode=config.mode,
    )
    return Simulation(
        config=cluster,
        scheduler=scheduler,
        carbon_api=CarbonIntensityAPI(trace),
        provisioner=provisioner,
        measure_latency=config.measure_latency,
    )


def run_experiment(
    config: ExperimentConfig,
    carbon_trace: CarbonTrace | None = None,
) -> ExperimentResult:
    """Materialize and run one experiment to completion."""
    return simulation_for(config, carbon_trace).run(workload_for(config))


def run_matchup(
    scheduler_names: list[str],
    config: ExperimentConfig,
    carbon_trace: CarbonTrace | None = None,
) -> dict[str, ExperimentResult]:
    """Run several schedulers on the identical workload and trace slice.

    The workload seed and trace slice come from ``config``, so every
    scheduler sees the same batch — this is what makes the paper's
    normalized metrics meaningful.

    A matchup is the degenerate one-axis campaign, and since the campaign
    subsystem exists it runs through that layer
    (:func:`repro.campaign.executor.run_matchup_trials`): the scheduler list
    expands via :func:`repro.campaign.spec.matchup_spec` and every trial
    goes through the same ``execute_trial`` funnel the process-pool workers
    use. Imported lazily — :mod:`repro.campaign` builds on this module.
    """
    from repro.campaign.executor import run_matchup_trials

    return run_matchup_trials(scheduler_names, config, carbon_trace=carbon_trace)
