"""Analytical quantities: stretch factors and savings decompositions.

Implements the paper's theory so experiments can check bounds empirically:

- **Graham's bound** ``2 - 1/K`` — list scheduling's approximation factor,
  inherited by every carbon-agnostic baseline (Appendix B).
- **Theorem 4.3** — PCAPS's carbon stretch factor ``1 + D(γ,c)K / (2-1/K)``.
- **Theorem 4.5** — CAP's carbon stretch factor
  ``(K/M)^2 (2M-1)/(2K-1)`` with ``M = M(B,c)`` the minimum quota.
- **Theorems 4.4 / 4.6** — exact carbon-savings decompositions
  ``W (s₋ - s₊ - c_tail)``, computed here from two recorded schedules; the
  decomposition is an identity, so predicted and measured savings agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.carbon.trace import CarbonTrace
from repro.simulator.metrics import ExperimentResult
from repro.simulator.trace import ScheduleTrace


def graham_bound(num_machines: int) -> float:
    """List scheduling's classic makespan approximation: ``2 - 1/K``."""
    if num_machines < 1:
        raise ValueError("num_machines must be >= 1")
    return 2.0 - 1.0 / num_machines


def pcaps_stretch_factor(deferral_fraction_value: float, num_machines: int) -> float:
    """Theorem 4.3: PCAPS's carbon stretch factor ``1 + D·K / (2 - 1/K)``."""
    if not 0.0 <= deferral_fraction_value <= 1.0:
        raise ValueError("deferral fraction must be in [0,1]")
    return 1.0 + deferral_fraction_value * num_machines / graham_bound(num_machines)


def cap_stretch_factor(num_machines: int, min_quota: int) -> float:
    """Theorem 4.5: CAP's carbon stretch factor
    ``(K/M)^2 * (2M-1) / (2K-1)``."""
    if not 1 <= min_quota <= num_machines:
        raise ValueError("need 1 <= min_quota <= num_machines")
    K, M = num_machines, min_quota
    return (K / M) ** 2 * (2 * M - 1) / (2 * K - 1)


def deferral_fraction(
    deferrals: int, mean_task_duration: float, total_work: float
) -> float:
    """Empirical estimate of ``D(γ, c)`` (Appendix B.1).

    ``D`` is the fraction of total runtime deferred by PCAPS's filter; we
    estimate it as (number of deferral events × mean task duration) / OPT₁,
    clipped to [0, 1]. ``D(0, c) = 0`` because γ=0 never defers.
    """
    if total_work <= 0:
        raise ValueError("total_work must be positive")
    if deferrals < 0 or mean_task_duration < 0:
        raise ValueError("deferrals and mean_task_duration must be >= 0")
    return min(1.0, deferrals * mean_task_duration / total_work)


def min_quota_from_trace(trace: ScheduleTrace, default: int) -> int:
    """``M(B, c)``: minimum quota recorded during a run (Theorem 4.5)."""
    if not trace.quotas:
        return default
    return min(q.quota for q in trace.quotas)


def carbon_savings(
    baseline: ExperimentResult, carbon_aware: ExperimentResult
) -> float:
    """Definition 3.2: baseline emissions minus carbon-aware emissions."""
    return baseline.carbon_footprint - carbon_aware.carbon_footprint


# ----------------------------------------------------------------------
# Theorems 4.4 / 4.6: the W(s- - s+ - c_tail) decomposition
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SavingsDecomposition:
    """The quantities of Theorems 4.4/4.6 measured from two schedules.

    - ``excess_work`` (W): executor-seconds deferred past the baseline's
      finish time.
    - ``s_minus``: weighted-average intensity of work the carbon-aware
      schedule *avoided* before the baseline finished.
    - ``s_plus``: weighted-average intensity of work it *opportunistically
      added* before the baseline finished (e.g. catching up in low-carbon
      valleys).
    - ``c_tail``: weighted-average intensity of the make-up work after the
      baseline finished.
    - ``predicted_savings``: ``W (s_minus - s_plus - c_tail)``.
    - ``measured_savings``: direct footprint difference (Definition 3.2).

    The decomposition is an identity, so the two savings values agree up to
    floating-point error.
    """

    excess_work: float
    s_minus: float
    s_plus: float
    c_tail: float
    predicted_savings: float
    measured_savings: float


def _busy_per_step(result: ExperimentResult, num_steps: int) -> np.ndarray:
    """Average busy executors per carbon step (the ``E_t`` series)."""
    step = result.carbon_trace.step_seconds
    busy = np.zeros(num_steps)
    for task in result.trace.tasks:
        first = int(task.start // step)
        last = int(math.ceil(task.end / step))
        for i in range(first, min(last, num_steps)):
            lo = max(task.start, i * step)
            hi = min(task.end, (i + 1) * step)
            if hi > lo:
                busy[i] += hi - lo
    return busy / step


def average_step_savings(
    baseline: ExperimentResult, carbon_aware: ExperimentResult
) -> np.ndarray:
    """Per-carbon-step average savings (Corollaries B.1 / B.2).

    In the saturated regime (always outstanding work), the corollaries give
    the average per-step savings as ``(ρ_AG·K - ρ_CA(c_t)·K)·c_t`` — the
    utilization gap times the step's intensity. This function measures that
    series directly from two recorded schedules: entry ``t`` is
    ``(E_base[t] - E_aware[t]) * c_t * step_seconds``, whose sum equals the
    total carbon savings (Definition 3.2).
    """
    trace = baseline.carbon_trace
    if carbon_aware.carbon_trace is not trace:
        raise ValueError("both results must share one carbon trace")
    step = trace.step_seconds
    num_steps = int(math.ceil(max(baseline.ect, carbon_aware.ect) / step)) + 1
    e_base = _busy_per_step(baseline, num_steps)
    e_aware = _busy_per_step(carbon_aware, num_steps)
    intensities = np.array(
        [trace.intensity_at(i * step) for i in range(num_steps)]
    )
    return (e_base - e_aware) * intensities * step


def utilization_by_intensity(
    result: ExperimentResult, num_bins: int = 10
) -> list[tuple[float, float]]:
    """Average machine utilization conditioned on carbon intensity.

    The Corollary B.1 quantity ``ρ(c)``: for each intensity bin, the mean
    fraction of executors busy while the grid was in that bin. Carbon-aware
    schedulers show a decreasing profile (throttle when dirty); carbon-
    agnostic ones are flat. Returns ``(bin_center, utilization)`` pairs for
    the bins that occurred.
    """
    if num_bins < 1:
        raise ValueError("num_bins must be >= 1")
    trace = result.carbon_trace
    step = trace.step_seconds
    num_steps = int(math.ceil(result.ect / step)) + 1
    busy = _busy_per_step(result, num_steps) / result.trace.total_executors
    intensities = np.array(
        [trace.intensity_at(i * step) for i in range(num_steps)]
    )
    lo, hi = intensities.min(), intensities.max()
    edges = np.linspace(lo, hi + 1e-9, num_bins + 1)
    profile = []
    for b in range(num_bins):
        mask = (intensities >= edges[b]) & (intensities < edges[b + 1])
        if mask.any():
            center = 0.5 * (edges[b] + edges[b + 1])
            profile.append((float(center), float(busy[mask].mean())))
    return profile


def savings_decomposition(
    baseline: ExperimentResult, carbon_aware: ExperimentResult
) -> SavingsDecomposition:
    """Measure the Theorem 4.4/4.6 decomposition from two runs.

    Both runs must share the same carbon trace. The baseline finishing time
    ``T`` splits time into the comparison window (where ``s₋``/``s₊`` are
    accrued) and the tail (where ``c_tail`` is accrued).
    """
    trace: CarbonTrace = baseline.carbon_trace
    if carbon_aware.carbon_trace is not trace:
        raise ValueError("both results must share one carbon trace")
    step = trace.step_seconds
    t_base = baseline.ect
    t_aware = carbon_aware.ect
    num_steps = int(math.ceil(max(t_base, t_aware) / step)) + 1
    e_base = _busy_per_step(baseline, num_steps)
    e_aware = _busy_per_step(carbon_aware, num_steps)
    intensities = np.array(
        [trace.intensity_at(i * step) for i in range(num_steps)]
    )
    boundary = int(math.ceil(t_base / step))  # steps [0, boundary) are <= T

    diff = (e_base - e_aware)[:boundary]
    c_window = intensities[:boundary]
    deferred = np.clip(diff, 0.0, None)
    opportunistic = np.clip(-diff, 0.0, None)
    excess_work = float(deferred.sum() * step)

    tail_work = float(e_aware[boundary:].sum() * step)
    if excess_work <= 0:
        s_minus = s_plus = c_tail = 0.0
    else:
        s_minus = float((deferred * c_window).sum() * step / excess_work)
        s_plus = float((opportunistic * c_window).sum() * step / excess_work)
        c_tail = float(
            (e_aware[boundary:] * intensities[boundary:]).sum()
            * step
            / excess_work
        )
    predicted = excess_work * (s_minus - s_plus - c_tail)
    measured = carbon_savings(baseline, carbon_aware)
    # The baseline's series is zero beyond `boundary`, so `predicted`
    # telescopes to the full footprint difference: the decomposition is an
    # identity (validated in tests). `tail_work` equals `excess_work` when
    # both runs perform identical busy time.
    del tail_work
    return SavingsDecomposition(
        excess_work=excess_work,
        s_minus=s_minus,
        s_plus=s_plus,
        c_tail=c_tail,
        predicted_savings=predicted,
        measured_savings=measured,
    )
