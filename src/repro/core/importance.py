"""Relative importance (Definition 4.2).

Given the probability distribution a Definition 4.1 scheduler assigns to the
ready frontier, a task's relative importance is its probability mass
normalized by the largest mass::

    r_{v,t} = p_{v,t} / max_u p_{u,t}  ∈ [0, 1]

A value near 1 marks a bottleneck task (the scheduler would almost surely
pick it); values near 0 mark deferrable tasks. A singleton frontier always
has importance 1.
"""

from __future__ import annotations

import numpy as np


def relative_importance(probabilities: np.ndarray | list[float]) -> np.ndarray:
    """Per-task relative importance for one frontier distribution.

    Parameters
    ----------
    probabilities:
        Non-negative masses over the ready frontier (need not sum to one;
        only ratios matter).

    Returns
    -------
    numpy.ndarray
        ``p / p.max()`` elementwise, in [0, 1]. The maximum entry is exactly
        1; a singleton input maps to ``[1.0]``.
    """
    p = np.asarray(probabilities, dtype=float)
    if p.ndim != 1 or p.size == 0:
        raise ValueError("probabilities must be a non-empty 1-D array")
    if np.any(p < 0) or not np.all(np.isfinite(p)):
        raise ValueError("probabilities must be finite and >= 0")
    peak = p.max()
    if peak <= 0:
        # Degenerate all-zero distribution: every task is equally (un)important;
        # treat all as maximally important so nothing is filtered on bad input.
        return np.ones_like(p)
    return p / peak
