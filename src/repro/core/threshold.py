"""Threshold functions: PCAPS's ``Ψ_γ`` and CAP's k-search set ``Φ``.

Both thresholds hedge between executing now and waiting for lower-carbon
periods, using only the forecast bounds ``L <= c(t) <= U`` (Section 3).

``Ψ_γ`` (Section 4.1) maps a task's relative importance ``r ∈ [0,1]`` to the
highest carbon intensity at which the task should still run::

    Ψ_γ(r) = (γL + (1-γ)U) + [U - (γL + (1-γ)U)] * (exp(γr) - 1) / (exp(γ) - 1)

so ``Ψ_γ(1) = U`` (bottleneck tasks always run) and ``Ψ_0 ≡ U`` (carbon-
agnostic). The exponential shape is inherited from one-way-trading
thresholds [El-Yaniv et al.].

``Φ`` (Section 4.2) is the (K-B)-search threshold set: ``Φ_i = U`` for
``i <= B`` and for ``i ∈ {1, …, K-B}``::

    Φ_{i+B} = U - (U - U/α) * (1 + 1/((K-B)α))^(i-1)

where ``α > 1`` solves ``(1 + 1/((K-B)α))^(K-B) = (U-L) / (U(1-1/α))``.
The quota at carbon intensity ``c`` is the number of thresholds ≥ ``c``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def _validate_bounds(low: float, high: float) -> None:
    if not (0 <= low <= high):
        raise ValueError(f"need 0 <= L <= U, got L={low}, U={high}")


def psi(
    r: float,
    gamma: float,
    low: float,
    high: float,
    shape: str = "exponential",
) -> float:
    """PCAPS's threshold ``Ψ_γ(r)`` (Section 4.1).

    Parameters
    ----------
    r:
        Relative importance in [0, 1] (Definition 4.2).
    gamma:
        Carbon-awareness in [0, 1]; 0 recovers carbon-agnostic behaviour.
    low / high:
        Forecast carbon bounds ``L`` and ``U``.
    shape:
        ``"exponential"`` is the paper's design; ``"linear"`` replaces the
        exponential interpolation with a straight line (an ablation).
    """
    if not 0.0 <= r <= 1.0:
        raise ValueError(f"relative importance must be in [0,1], got {r}")
    if not 0.0 <= gamma <= 1.0:
        raise ValueError(f"gamma must be in [0,1], got {gamma}")
    _validate_bounds(low, high)
    floor = gamma * low + (1.0 - gamma) * high
    if gamma == 0.0:
        return high  # exp(γr)-1 / exp(γ)-1 -> r as γ->0, but floor is U anyway
    if shape == "exponential":
        ramp = math.expm1(gamma * r) / math.expm1(gamma)
    elif shape == "linear":
        ramp = r
    else:
        raise ValueError(f"unknown shape {shape!r}")
    return floor + (high - floor) * ramp


def solve_alpha(
    num_slots: int, low: float, high: float, tolerance: float = 1e-10
) -> float:
    """Solve the CAP ``α`` root for ``k = num_slots`` flexible machine slots.

    Finds ``α > 1`` with ``(1 + 1/(kα))^k = (U-L) / (U(1-1/α))`` by
    bisection. The left side decreases from ``(1+1/k)^k`` toward 1 as α
    grows; the right side decreases from +∞ toward ``(U-L)/U < 1``, so a
    unique crossing exists for ``U > L > 0``.
    """
    if num_slots < 1:
        raise ValueError("num_slots must be >= 1")
    _validate_bounds(low, high)
    if high <= low or high == 0:
        return math.inf  # no fluctuation: thresholds degenerate to U

    k = num_slots
    ratio = (high - low) / high

    def f(alpha: float) -> float:
        lhs = (1.0 + 1.0 / (k * alpha)) ** k
        rhs = ratio / (1.0 - 1.0 / alpha)
        return lhs - rhs

    lo_a = 1.0 + 1e-12
    hi_a = 2.0
    while f(hi_a) < 0:
        hi_a *= 2.0
        if hi_a > 1e12:  # pragma: no cover - defensive
            raise RuntimeError("alpha solver failed to bracket a root")
    for _ in range(200):
        mid = 0.5 * (lo_a + hi_a)
        if f(mid) < 0:
            lo_a = mid
        else:
            hi_a = mid
        if hi_a - lo_a < tolerance:
            break
    return 0.5 * (lo_a + hi_a)


@dataclass(frozen=True)
class CAPThresholds:
    """CAP's threshold set for one ``(K, B, L, U)`` configuration.

    ``values[i]`` is ``Φ_{i+1}`` (1-indexed in the paper): a non-increasing
    array of length ``K`` with ``values[:B] == U``.
    """

    total_machines: int
    min_quota: int
    low: float
    high: float
    alpha: float
    values: tuple[float, ...]

    def quota(self, carbon_intensity: float) -> int:
        """Machines allowed at this intensity: ``#{i : Φ_i >= c}``.

        At least ``min_quota`` (B) machines are always allowed (``Φ_i = U``
        for i ≤ B and intensities above U are clamped), guaranteeing
        continuous progress (Section 4.2). With degenerate bounds
        (``U <= L``) every threshold equals ``U`` and the quota is ``K``.
        """
        arr = np.asarray(self.values)
        return max(self.min_quota, int(np.count_nonzero(arr >= carbon_intensity)))


def cap_thresholds(
    total_machines: int, min_quota: int, low: float, high: float
) -> CAPThresholds:
    """Build CAP's ``Φ`` threshold set (Section 4.2).

    ``min_quota`` is the paper's ``B``: a floor on the executor quota. When
    ``B == K`` or the forecast is flat (``U <= L``), every threshold is
    ``U`` and the quota is always ``K`` — CAP degenerates to the
    carbon-agnostic baseline.
    """
    if total_machines < 1:
        raise ValueError("total_machines must be >= 1")
    if not 1 <= min_quota <= total_machines:
        raise ValueError("need 1 <= min_quota <= total_machines")
    _validate_bounds(low, high)

    K, B = total_machines, min_quota
    k = K - B
    if k == 0 or high <= low or high == 0:
        return CAPThresholds(
            total_machines=K,
            min_quota=B,
            low=low,
            high=high,
            alpha=math.inf,
            values=tuple([high] * K),
        )
    alpha = solve_alpha(k, low, high)
    values = [high] * B
    base = high - high / alpha
    growth = 1.0 + 1.0 / (k * alpha)
    for i in range(1, k + 1):
        values.append(high - base * growth ** (i - 1))
    return CAPThresholds(
        total_machines=K,
        min_quota=B,
        low=low,
        high=high,
        alpha=alpha,
        values=tuple(values),
    )


def cap_quota(
    carbon_intensity: float,
    total_machines: int,
    min_quota: int,
    low: float,
    high: float,
) -> int:
    """One-shot quota computation (builds the threshold set and queries it)."""
    return cap_thresholds(total_machines, min_quota, low, high).quota(
        carbon_intensity
    )
