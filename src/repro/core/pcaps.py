"""PCAPS: Precedence- and Carbon-Aware Provisioning and Scheduling.

Algorithm 1 of the paper, as a wrapper over any probabilistic
(Definition 4.1) scheduler:

1. At each scheduling event, sample a stage ``v`` and obtain the frontier
   distribution ``{p_u}`` from the wrapped scheduler.
2. Compute relative importance ``r = p_v / max_u p_u`` (Definition 4.2).
3. Schedule ``v`` iff ``Ψ_γ(r) >= c(t)`` or no machines are currently busy
   (the minimum-progress guarantee); otherwise defer — idle the free
   executors until the next scheduling event.
4. When scheduling, shrink the stage's parallelism limit to
   ``P' = ceil(P * min{exp(γ(L - c_t)), 1 - γ})`` (Section 5.1), so even
   admitted stages ramp down during high-carbon periods.
"""

from __future__ import annotations

import math

from repro.core.threshold import psi
from repro.simulator.interfaces import (
    ProbabilisticPolicy,
    StageChoice,
    StageScheduler,
    drive_select,
)
from repro.simulator.state import ClusterView


class PCAPSScheduler(StageScheduler):
    """The carbon-awareness filter of Algorithm 1.

    Parameters
    ----------
    policy:
        The wrapped probabilistic scheduler ``PB`` (e.g. the Decima
        surrogate). PCAPS consumes its distribution and its parallelism
        choices.
    gamma:
        Carbon-awareness knob ``γ ∈ [0, 1]``; 0 is carbon-agnostic, 1 is
        maximally carbon-aware for unimportant tasks. The paper's
        "moderate" setting is 0.5.
    threshold_shape:
        ``"exponential"`` (the paper's ``Ψ_γ``) or ``"linear"`` (ablation).
    parallelism_mode:
        How to apply the Section 5.1 parallelism reduction ``P'``:

        - ``"decay"`` (default): ``P' = ⌈P · exp(γ (L-c_t) κ / (U-L))⌉`` —
          full parallelism at clean hours, exponential ramp-down toward
          ``U``. This follows the paper's stated intuition ("set lower
          limits during high-carbon periods") and reproduces its measured
          ECT profile.
        - ``"paper"``: the literal formula with the additional ``(1-γ)``
          cap, ``P' = ⌈P · min{exp(γ(L-c_t)κ/(U-L)), 1-γ}⌉``, which cuts
          parallelism even at the cleanest hours (an ablation here; see
          DESIGN.md).
        - ``"off"``: no parallelism reduction (filter only).
    defer_scope:
        What a rejected sample defers:

        - ``"event"`` (Algorithm 1): the whole scheduling event — remaining
          free executors idle until the next event;
        - ``"sample"`` (ablation): only the sampled stage — PCAPS re-samples
          up to ``max_resamples`` times before idling, which keeps more of
          the cluster busy but defers less carbon.
    max_resamples:
        Resampling budget for ``defer_scope="sample"``.
    """

    def __init__(
        self,
        policy: ProbabilisticPolicy,
        gamma: float = 0.5,
        threshold_shape: str = "exponential",
        parallelism_mode: str = "decay",
        defer_scope: str = "event",
        max_resamples: int = 4,
    ) -> None:
        if not 0.0 <= gamma <= 1.0:
            raise ValueError(f"gamma must be in [0,1], got {gamma}")
        if parallelism_mode not in ("decay", "paper", "off"):
            raise ValueError(f"unknown parallelism_mode {parallelism_mode!r}")
        if defer_scope not in ("event", "sample"):
            raise ValueError(f"unknown defer_scope {defer_scope!r}")
        if max_resamples < 1:
            raise ValueError("max_resamples must be >= 1")
        self.policy = policy
        self.gamma = gamma
        self.threshold_shape = threshold_shape
        self.parallelism_mode = parallelism_mode
        self.defer_scope = defer_scope
        self.max_resamples = max_resamples
        self.name = f"pcaps(γ={gamma:g},{policy.name})"
        #: Count of sampled stages rejected by the filter (diagnostics).
        self.deferral_count = 0

    def reset(self) -> None:
        self.policy.reset()
        self.deferral_count = 0

    #: Decay rate of the parallelism reduction over the forecast range.
    #: Section 5.1 writes ``exp(γ(L - c_t))`` with raw carbon intensities;
    #: since ``L - c_t`` is tens to hundreds of gCO2eq/kWh, the literal
    #: formula collapses to parallelism 1 whenever ``c_t`` exceeds ``L`` at
    #: all. We normalize the exponent by the forecast range ``U - L``
    #: (making it dimensionless) and apply this decay rate.
    PARALLELISM_DECAY = 3.0

    # ------------------------------------------------------------------
    def _parallelism(
        self, base_limit: int, low: float, high: float, intensity: float
    ) -> int:
        """The Section 5.1 parallelism reduction ``P'``."""
        if self.parallelism_mode == "off" or self.gamma == 0.0:
            return base_limit
        span = max(high - low, 1e-9)
        exponent = self.gamma * (low - intensity) / span * self.PARALLELISM_DECAY
        factor = math.exp(exponent)
        if self.parallelism_mode == "paper":
            factor = min(factor, 1.0 - self.gamma)
        return max(1, math.ceil(base_limit * factor))

    def select(self, view: ClusterView) -> StageChoice | None:
        return drive_select(self.select_gen(view))

    def select_gen(self, view: ClusterView):
        attempts = self.max_resamples if self.defer_scope == "sample" else 1
        reading = view.carbon
        no_machines_busy = view.busy_executors == 0
        chosen = None
        for _ in range(attempts):
            sampled = yield from self.policy.sample_with_importance_gen(view)
            if sampled is None:
                return None
            candidate, importance = sampled
            threshold = psi(
                importance,
                self.gamma,
                low=reading.lower_bound,
                high=reading.upper_bound,
                shape=self.threshold_shape,
            )
            if threshold >= reading.intensity or no_machines_busy:
                chosen = candidate
                break
            self.deferral_count += 1
        if chosen is None:
            return None  # defer: idle until the next scheduling event

        base_limit = self.policy.parallelism_limit(view, chosen)
        limit = self._parallelism(
            base_limit,
            low=reading.lower_bound,
            high=reading.upper_bound,
            intensity=reading.intensity,
        )
        return StageChoice(
            job_id=chosen.job_id,
            stage_id=chosen.stage_id,
            parallelism_limit=limit,
        )
