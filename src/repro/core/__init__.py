"""The paper's primary contribution: PCAPS and CAP.

- :class:`~repro.core.pcaps.PCAPSScheduler` — Algorithm 1: a carbon-
  awareness filter over any probabilistic (Definition 4.1) scheduler, built
  on the relative-importance metric (Definition 4.2) and the threshold
  function ``Ψ_γ``.
- :class:`~repro.core.cap.CAPProvisioner` — Section 4.2: a k-search-derived,
  time-varying executor quota that wraps any carbon-agnostic scheduler.
- :mod:`~repro.core.threshold` — the ``Ψ_γ`` family and the CAP threshold
  set ``Φ`` (with its ``α`` root-solver).
- :mod:`~repro.core.analysis` — carbon stretch factors (Theorems 4.3/4.5),
  carbon-savings decompositions (Theorems 4.4/4.6), and the supporting
  quantities (``D(γ,c)``, ``M(B,c)``, Graham's bound).
"""

from repro.core.cap import CAPProvisioner
from repro.core.importance import relative_importance
from repro.core.pcaps import PCAPSScheduler
from repro.core.threshold import (
    CAPThresholds,
    cap_quota,
    cap_thresholds,
    psi,
    solve_alpha,
)
from repro.core.analysis import (
    SavingsDecomposition,
    average_step_savings,
    cap_stretch_factor,
    carbon_savings,
    deferral_fraction,
    graham_bound,
    min_quota_from_trace,
    pcaps_stretch_factor,
    savings_decomposition,
    utilization_by_intensity,
)

__all__ = [
    "CAPProvisioner",
    "CAPThresholds",
    "PCAPSScheduler",
    "SavingsDecomposition",
    "average_step_savings",
    "cap_quota",
    "cap_stretch_factor",
    "cap_thresholds",
    "carbon_savings",
    "deferral_fraction",
    "graham_bound",
    "min_quota_from_trace",
    "pcaps_stretch_factor",
    "psi",
    "relative_importance",
    "savings_decomposition",
    "solve_alpha",
    "utilization_by_intensity",
]
