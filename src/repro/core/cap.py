"""CAP: Carbon-Aware Provisioning (Section 4.2).

CAP wraps *any* carbon-agnostic scheduler by imposing a time-varying,
non-preemptive executor quota derived from the (K-B)-search threshold set:
when carbon intensity is at its forecast maximum ``U`` only the minimum
quota ``B`` machines may be busy; as intensity falls toward ``L`` the quota
rises to the full cluster ``K``. It additionally shrinks parallelism limits
proportionally to the quota (Section 5.1): ``P' = ceil(P * r(t)/K)``.

Thresholds are rebuilt whenever the forecast bounds ``(L, U)`` change, so
CAP adapts as the 48-hour lookahead window slides.
"""

from __future__ import annotations

import math

from repro.core.threshold import CAPThresholds, cap_thresholds
from repro.simulator.interfaces import Provisioner
from repro.simulator.state import ClusterView


class CAPProvisioner(Provisioner):
    """The CAP module, enforced by the engine without preemption.

    Parameters
    ----------
    total_executors:
        Cluster size ``K`` (must match the cluster config).
    min_quota:
        The paper's ``B``: machines always allowed, guaranteeing progress.
        The paper's "moderate" prototype setting is B=20 on K=100.
    scale_parallelism:
        Apply the ``P' = ceil(P * r(t)/K)`` reduction (ablation flag).
    """

    def __init__(
        self,
        total_executors: int,
        min_quota: int,
        scale_parallelism: bool = True,
    ) -> None:
        if total_executors < 1:
            raise ValueError("total_executors must be >= 1")
        if not 1 <= min_quota <= total_executors:
            raise ValueError("need 1 <= min_quota <= total_executors")
        self.total_executors = total_executors
        self.min_quota = min_quota
        self.scale_parallelism_enabled = scale_parallelism
        self.name = f"cap(B={min_quota}/K={total_executors})"
        self._thresholds: CAPThresholds | None = None
        self._bounds: tuple[float, float] | None = None
        self._last_quota = total_executors
        #: History of (time, quota) decisions, for M(B,c) analysis.
        self.quota_history: list[tuple[float, int]] = []

    def reset(self) -> None:
        self._thresholds = None
        self._bounds = None
        self._last_quota = self.total_executors
        self.quota_history = []

    def thresholds_for(self, low: float, high: float) -> CAPThresholds:
        """The Φ set for the current forecast bounds (cached)."""
        if self._bounds != (low, high) or self._thresholds is None:
            self._thresholds = cap_thresholds(
                self.total_executors, self.min_quota, low, high
            )
            self._bounds = (low, high)
        return self._thresholds

    def quota(self, view: ClusterView) -> int:
        reading = view.carbon
        thresholds = self.thresholds_for(reading.lower_bound, reading.upper_bound)
        value = thresholds.quota(reading.intensity)
        self._last_quota = value
        self.quota_history.append((view.time, value))
        return value

    def scale_parallelism(self, limit: int, view: ClusterView) -> int:
        """``P' = ceil(P * r(t)/K)`` — Section 5.1's CAP parallelism rule."""
        if not self.scale_parallelism_enabled:
            return limit
        ratio = self._last_quota / self.total_executors
        return max(1, math.ceil(limit * ratio))

    def min_quota_seen(self) -> int:
        """``M(B, c)``: the smallest quota this run (Theorem 4.5's constant)."""
        if not self.quota_history:
            return self.total_executors
        return min(q for _, q in self.quota_history)
