"""Installing a disruption schedule into a simulation.

The engine stays generic — :class:`~repro.simulator.engine.SimulationStepper`
exposes capacity and signal verbs but knows nothing about schedules. This
module is the bridge: :func:`install_disruptions` translates a
:class:`~repro.disrupt.schedule.DisruptionSchedule` into engine events on
one stepper, and :func:`run_disrupted_experiment` is the single-cluster
entry point mirroring :func:`repro.experiments.runner.run_experiment`.

Installing an *empty* schedule pushes no events, so the run replays
bit-identically to the undisrupted engine — the invariant the fingerprint
tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.carbon.api import CarbonIntensityAPI
from repro.disrupt.schedule import DisruptionSchedule
from repro.experiments.runner import (
    ExperimentConfig,
    build_scheduler,
    carbon_trace_for,
    workload_for,
)
from repro.obs.observer import current as _current_observer
from repro.simulator.engine import ClusterConfig, Simulation, SimulationStepper
from repro.simulator.metrics import ExperimentResult


def install_disruptions(
    stepper: SimulationStepper,
    schedule: DisruptionSchedule,
    region: str | None = None,
) -> int:
    """Schedule ``region``'s disruption events on one engine stepper.

    Outages and curtailments become paired capacity events (drop at
    ``start``, restore to full at ``end``); signal blackouts freeze the
    scheduler-visible carbon reading over their window. Returns the number
    of schedule events installed. Call before (or while) driving the
    stepper — events must not predate already-processed timestamps.
    """
    num_executors = stepper.sim.config.num_executors
    events = schedule.events_for(region)
    observer = _current_observer()
    for event in events:
        if event.affects_capacity:
            stepper.schedule_capacity(
                event.start, event.online_executors(num_executors)
            )
            stepper.schedule_capacity(event.end, num_executors)
        else:
            stepper.schedule_signal_blackout(event.start, event.end)
        if observer is not None:
            observer.registry.counter(f"disrupt.events.{event.kind}").inc()
            observer.tracer.sim_span(
                event.kind,
                event.start,
                event.end,
                cat="disrupt",
                track=region or "cluster",
                capacity_fraction=event.capacity_fraction,
            )
    return len(events)


@dataclass(frozen=True)
class DisruptedRun:
    """A single-cluster disrupted trial: the result plus the schedule."""

    result: ExperimentResult
    schedule: DisruptionSchedule
    preempted_tasks: int


def run_disrupted_experiment(
    config: ExperimentConfig,
    schedule: DisruptionSchedule,
    region: str | None = None,
) -> DisruptedRun:
    """Run one single-cluster experiment under a disruption schedule.

    The exact materialization path of
    :func:`~repro.experiments.runner.run_experiment` (same memoized
    workload, trace slice, and scheduler construction), driven through a
    stepper with the schedule installed. With
    ``DisruptionSchedule.empty()`` the result is bit-identical to
    ``run_experiment(config)``.
    """
    trace = carbon_trace_for(config)
    submissions = workload_for(config)
    scheduler, provisioner = build_scheduler(config, trace)
    cluster = ClusterConfig(
        num_executors=config.num_executors,
        executor_move_delay=config.executor_move_delay,
        per_job_executor_cap=(
            config.per_job_cap if config.mode == "kubernetes" else None
        ),
        mode=config.mode,
    )
    sim = Simulation(
        config=cluster,
        scheduler=scheduler,
        carbon_api=CarbonIntensityAPI(trace),
        provisioner=provisioner,
        measure_latency=config.measure_latency,
    )
    stepper = sim.stepper()
    for sub in submissions:
        stepper.submit(sub)
    install_disruptions(stepper, schedule, region=region)
    stepper.run_to_completion()
    return DisruptedRun(
        result=stepper.result(),
        schedule=schedule,
        preempted_tasks=stepper.preempted_tasks,
    )
