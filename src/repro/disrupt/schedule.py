"""Disruption schedules: timed outage, curtailment, and blackout events.

A :class:`DisruptionSchedule` is a deterministic, validated list of
:class:`DisruptionEvent` s describing what goes wrong during a trial and
when. Three kinds of disruption cover the failure modes the ROADMAP's
"region outages / failover routing mid-trial" follow-up names:

- ``outage`` — a region (or the single cluster) loses *all* capacity over
  ``[start, end)``; running tasks are preempted and requeue, queued jobs
  wait (or migrate, if the federation's failover machinery is on);
- ``curtailment`` — demand-response capacity reduction: only
  ``capacity_fraction`` of the executors stay online over the window;
- ``signal-blackout`` — the carbon-intensity API goes stale: schedulers
  keep receiving the last reading taken before ``start`` until ``end``
  (ex-post accounting still uses the true trace — only *decisions* see
  stale data).

This module deliberately has no dependency on the engine or the geo layer,
so both can import it: the schedule is pure data. Schedules are frozen
(hashable) so they can ride inside a
:class:`~repro.geo.config.FederationConfig` and flow through the campaign
store's content-addressed trial keys unchanged.

Determinism: :meth:`DisruptionSchedule.generate` draws events from
``numpy.random.default_rng((seed, _SCHEDULE_SEED_SALT))``, so a pinned seed
always yields the byte-identical schedule, independent of the workload
stream drawn from the same seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Event kinds accepted by :class:`DisruptionEvent`.
EVENT_KINDS: tuple[str, ...] = ("outage", "curtailment", "signal-blackout")

#: Salt mixed into the schedule-generation RNG so generated disruptions are
#: independent of workload synthesis and origin assignment at the same seed.
_SCHEDULE_SEED_SALT = 0xD15


@dataclass(frozen=True)
class DisruptionEvent:
    """One timed disruption.

    Parameters
    ----------
    kind:
        One of :data:`EVENT_KINDS`.
    start, end:
        The disruption window in simulated seconds; the effect applies at
        ``start`` and is lifted at ``end``. Both must be finite — a
        disruption that never ends would leave the engine simulating carbon
        steps forever.
    region:
        Member-region name the event applies to, or ``None`` for
        single-cluster runs (the whole cluster is "the region").
    capacity_fraction:
        For ``curtailment``: the fraction of executors that *stay online*
        (``0 < fraction < 1``). Outages are fraction 0 by definition;
        signal blackouts ignore the field.
    """

    kind: str
    start: float
    end: float
    region: str | None = None
    capacity_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown disruption kind {self.kind!r}; "
                f"choose from {EVENT_KINDS}"
            )
        if not (math.isfinite(self.start) and math.isfinite(self.end)):
            raise ValueError("disruption start/end must be finite")
        if self.start < 0 or self.end <= self.start:
            raise ValueError("need 0 <= start < end")
        if self.kind == "curtailment" and not 0.0 < self.capacity_fraction < 1.0:
            raise ValueError(
                "curtailment needs 0 < capacity_fraction < 1 "
                "(use an outage for a full stop)"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def affects_capacity(self) -> bool:
        """Outages and curtailments change capacity; blackouts do not."""
        return self.kind in ("outage", "curtailment")

    def online_executors(self, num_executors: int) -> int:
        """Executors that stay online during this event's window."""
        if self.kind == "outage":
            return 0
        if self.kind == "curtailment":
            return max(0, int(num_executors * self.capacity_fraction))
        return num_executors


@dataclass(frozen=True)
class DisruptionSchedule:
    """A validated, immutable sequence of disruption events.

    Capacity events (outage/curtailment) targeting the same region must not
    overlap — the engine restores *full* capacity at each event's end, so
    overlapping windows would be ambiguous. Signal blackouts may overlap
    capacity events (a grid-stress event plausibly takes the carbon API
    down too) but not each other.
    """

    events: tuple[DisruptionEvent, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        by_lane: dict[tuple[str | None, bool], list[DisruptionEvent]] = {}
        for event in self.events:
            by_lane.setdefault(
                (event.region, event.affects_capacity), []
            ).append(event)
        for (region, _), lane in by_lane.items():
            lane = sorted(lane, key=lambda e: e.start)
            for earlier, later in zip(lane, lane[1:]):
                if later.start < earlier.end:
                    raise ValueError(
                        f"overlapping {earlier.kind}/{later.kind} events in "
                        f"region {region!r}: [{earlier.start}, {earlier.end}) "
                        f"and [{later.start}, {later.end})"
                    )

    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def empty(cls) -> "DisruptionSchedule":
        return cls(events=())

    def region_names(self) -> tuple[str, ...]:
        """Distinct region names referenced by events (``None`` excluded)."""
        seen: dict[str, None] = {}
        for event in self.events:
            if event.region is not None:
                seen.setdefault(event.region)
        return tuple(seen)

    def events_for(self, region: str | None) -> tuple[DisruptionEvent, ...]:
        """Events targeting one region, in start-time order."""
        return tuple(
            sorted(
                (e for e in self.events if e.region == region),
                key=lambda e: (e.start, e.kind),
            )
        )

    def capacity_events(self) -> tuple[DisruptionEvent, ...]:
        """Outage + curtailment events across all regions, by start time."""
        return tuple(
            sorted(
                (e for e in self.events if e.affects_capacity),
                key=lambda e: (e.start, e.region or ""),
            )
        )

    def outages(self) -> tuple[DisruptionEvent, ...]:
        return tuple(
            sorted(
                (e for e in self.events if e.kind == "outage"),
                key=lambda e: (e.start, e.region or ""),
            )
        )

    def online_executors_at(
        self, region: str | None, t: float, num_executors: int
    ) -> int:
        """Executors online in ``region`` at time ``t`` under this schedule."""
        for event in self.events:
            if (
                event.region == region
                and event.affects_capacity
                and event.start <= t < event.end
            ):
                return event.online_executors(num_executors)
        return num_executors

    def shifted(self, offset: float) -> "DisruptionSchedule":
        """The same schedule with every window moved by ``offset`` seconds."""
        return DisruptionSchedule(
            events=tuple(
                DisruptionEvent(
                    kind=e.kind,
                    start=e.start + offset,
                    end=e.end + offset,
                    region=e.region,
                    capacity_fraction=e.capacity_fraction,
                )
                for e in self.events
            )
        )

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        regions: tuple[str | None, ...] = (None,),
        horizon_s: float = 3600.0,
        num_outages: int = 1,
        mean_outage_s: float = 600.0,
        num_curtailments: int = 0,
        mean_curtailment_s: float = 900.0,
        curtailment_fraction: float = 0.5,
        num_blackouts: int = 0,
        mean_blackout_s: float = 1200.0,
    ) -> "DisruptionSchedule":
        """A seeded random schedule: pinned seed → byte-identical events.

        Event counts are totals across all regions; each event picks a
        region uniformly, a start uniformly over the horizon, and an
        exponential duration (clipped to at least 60 s). Windows that would
        overlap an already-placed capacity event in the same region are
        re-drawn (bounded retries), so generated schedules always validate.
        """
        rng = np.random.default_rng((seed, _SCHEDULE_SEED_SALT))
        events: list[DisruptionEvent] = []

        def _place(kind: str, mean_s: float, fraction: float) -> None:
            for _ in range(64):  # bounded retries to avoid overlaps
                region = regions[int(rng.integers(len(regions)))]
                start = float(rng.uniform(0.0, horizon_s))
                duration = max(60.0, float(rng.exponential(mean_s)))
                candidate = DisruptionEvent(
                    kind=kind,
                    start=start,
                    end=start + duration,
                    region=region,
                    capacity_fraction=(
                        fraction if kind == "curtailment" else 0.0
                    ),
                )
                try:
                    DisruptionSchedule(events=(*events, candidate))
                except ValueError:
                    continue
                events.append(candidate)
                return

        for _ in range(num_outages):
            _place("outage", mean_outage_s, 0.0)
        for _ in range(num_curtailments):
            _place("curtailment", mean_curtailment_s, curtailment_fraction)
        for _ in range(num_blackouts):
            _place("signal-blackout", mean_blackout_s, 0.0)
        return cls(events=tuple(events))
