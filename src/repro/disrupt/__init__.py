"""repro.disrupt — disruption & resilience subsystem.

Real carbon-aware fleets lose regions, get curtailed during grid-stress
events, and see their carbon-signal feeds go stale. This package injects
those failures into simulations as a deterministic, seeded
:class:`DisruptionSchedule` and measures how the system copes:

- :mod:`repro.disrupt.schedule` — :class:`DisruptionEvent` /
  :class:`DisruptionSchedule`: validated, hashable, seeded-generatable
  timelines of outages, capacity curtailments, and signal blackouts;
- :mod:`repro.disrupt.inject` — translate a schedule into engine events on
  a :class:`~repro.simulator.engine.SimulationStepper` (whose
  ``set_capacity`` / ``suspend`` / ``resume`` verbs preempt running tasks
  and requeue their jobs deterministically);
- :mod:`repro.disrupt.metrics` — :class:`DisruptionReport`: goodput,
  wasted (preempted) executor-seconds, rerouted/migrated job counts, the
  carbon penalty of failover, and per-event recovery latency.

Federation-level reactions (failover routing around down regions,
mid-trial migration of queued jobs) live in :mod:`repro.geo`; the
matchups and campaign presets in :mod:`repro.experiments.disrupt` and the
``disrupt-sweep`` campaign tie it all together. With an empty schedule
every path replays bit-identically to the undisrupted engine.

**Honest finding — failover costs carbon.** Resilience and carbon pull
in opposite directions here: in the pinned full benchmark (a long outage
of the cleanest region through most of the arrival window), failover
raises on-time completions 2/48 → 28/48 and cuts ECT by ~27%, but total
carbon rises +282 g vs riding the outage out (+291 g vs undisrupted,
~2.3×). The diverted jobs execute in dirtier grids and migrated inputs
ship twice; the migration transfer itself is small (<5 g). Failover
should be a policy knob weighed against deadline pressure, not a
default-on win — the :class:`DisruptionReport` ledger exists so trials
surface this trade instead of hiding it.
"""

from repro.disrupt.inject import (
    DisruptedRun,
    install_disruptions,
    run_disrupted_experiment,
)
from repro.disrupt.metrics import (
    DisruptionReport,
    cluster_disruption_report,
    federation_disruption_report,
    jobs_completed_by,
)
from repro.disrupt.schedule import (
    EVENT_KINDS,
    DisruptionEvent,
    DisruptionSchedule,
)

__all__ = [
    "EVENT_KINDS",
    "DisruptionEvent",
    "DisruptionSchedule",
    "DisruptedRun",
    "DisruptionReport",
    "cluster_disruption_report",
    "federation_disruption_report",
    "install_disruptions",
    "jobs_completed_by",
    "run_disrupted_experiment",
]
