"""Resilience metrics: what a disruption cost and how fast we recovered.

The paper's metrics (carbon, JCT, ECT) measure steady-state efficiency;
under disruptions the questions change: how much work was *wasted* on
preempted tasks, how many jobs had to be rerouted or migrated, what did
failover cost in extra transfer carbon, and how quickly did a region get
back to useful work after recovering? A :class:`DisruptionReport` collects
those, computed from the ordinary result objects plus the schedule — no
extra instrumentation in the engine's hot path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.disrupt.schedule import DisruptionSchedule
from repro.simulator.metrics import ExperimentResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geo.result import FederationResult


@dataclass(frozen=True)
class DisruptionReport:
    """Resilience metrics for one disrupted trial.

    ``goodput`` is the useful fraction of executor-seconds spent running
    tasks: ``1 - wasted / total`` (1.0 when nothing was preempted).
    ``recovery_latency_s`` holds, per capacity-restoring moment, the delay
    until the affected cluster next launched a task — ``math.inf`` when it
    never did (e.g. the batch had already drained).
    """

    num_events: int
    preempted_tasks: int
    wasted_executor_s: float
    goodput: float
    rerouted_jobs: int
    migrated_jobs: int
    failover_transfer_g: float
    recovery_latency_s: tuple[float, ...]
    jobs_completed: int

    @property
    def mean_recovery_latency_s(self) -> float:
        finite = [v for v in self.recovery_latency_s if math.isfinite(v)]
        return sum(finite) / len(finite) if finite else 0.0


def jobs_completed_by(finishes: Mapping[int, float], deadline: float) -> int:
    """Jobs finished at or before ``deadline`` — the goodput headline.

    Every job eventually completes in a drained simulation; what an outage
    actually costs is *lateness*, so disrupted variants are compared by how
    many jobs made a common deadline (e.g. 1.25x the undisrupted ECT).
    """
    return sum(1 for t in finishes.values() if t <= deadline)


def _goodput(total_task_s: float, wasted_s: float) -> float:
    if total_task_s <= 0:
        return 1.0
    return 1.0 - wasted_s / total_task_s


def _recovery_latencies(
    task_starts: list[float], schedule: DisruptionSchedule, region: str | None
) -> tuple[float, ...]:
    """Per capacity-restore delay until the next task launch in region.

    Every launch counts as recovery evidence — including ones later
    preempted by a subsequent event (the region demonstrably came back).
    """
    starts = sorted(task_starts)
    out: list[float] = []
    for event in schedule.events_for(region):
        if not event.affects_capacity:
            continue
        nxt = next((s for s in starts if s >= event.end), None)
        out.append(math.inf if nxt is None else nxt - event.end)
    return tuple(out)


def cluster_disruption_report(
    result: ExperimentResult,
    schedule: DisruptionSchedule,
    region: str | None = None,
) -> DisruptionReport:
    """Resilience metrics for one single-cluster disrupted trial."""
    trace = result.trace
    wasted = trace.wasted_time()
    return DisruptionReport(
        num_events=len(schedule.events_for(region)),
        preempted_tasks=len(trace.preempted_tasks()),
        wasted_executor_s=wasted,
        goodput=_goodput(trace.total_task_time(), wasted),
        rerouted_jobs=0,
        migrated_jobs=0,
        failover_transfer_g=0.0,
        recovery_latency_s=_recovery_latencies(
            [t.start for t in trace.tasks], schedule, region
        ),
        jobs_completed=len(result.finishes),
    )


def federation_disruption_report(
    result: "FederationResult",
    schedule: DisruptionSchedule | None = None,
    deadline: float | None = None,
) -> DisruptionReport:
    """Resilience metrics for one disrupted federation trial.

    ``schedule`` defaults to the one recorded on the result;
    ``deadline`` (when given) restricts ``jobs_completed`` to jobs that
    finished by it, so failover variants can be compared on common terms.
    """
    if schedule is None:
        schedule = result.disruptions or DisruptionSchedule.empty()
    total_task_s = 0.0
    wasted = 0.0
    preempted = 0
    latencies: list[float] = []
    for region in result.regions:
        trace = region.result.trace
        total_task_s += trace.total_task_time()
        wasted += trace.wasted_time()
        preempted += len(trace.preempted_tasks())
        latencies.extend(
            _recovery_latencies(
                [t.start for t in trace.tasks], schedule, region.name
            )
        )
    finishes = result.finishes
    completed = (
        jobs_completed_by(finishes, deadline)
        if deadline is not None
        else len(finishes)
    )
    return DisruptionReport(
        num_events=len(schedule),
        preempted_tasks=preempted,
        wasted_executor_s=wasted,
        goodput=_goodput(total_task_s, wasted),
        rerouted_jobs=len(result.reroutes),
        migrated_jobs=len(result.migrations),
        failover_transfer_g=sum(m.transfer_g for m in result.migrations),
        recovery_latency_s=tuple(latencies),
        jobs_completed=completed,
    )
