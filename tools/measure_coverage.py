"""Dependency-free line-coverage measurement for the test suite.

CI measures coverage with pytest-cov / coverage.py (see the ``coverage``
job in ``.github/workflows/ci.yml``). Development containers for this
repo don't ship those packages, so this script approximates the same
line metric with nothing but the standard library:

- *executable lines* come from compiling every ``src/repro`` module and
  collecting the line numbers its code objects report (``co_lines``) —
  the same universe coverage.py derives from the AST, minus a few edge
  cases (docstring-only bodies, dead branches the compiler folds);
- *executed lines* are collected by a ``sys.settrace`` hook filtered to
  ``src/repro`` frames, installed before pytest imports the package so
  import-time lines count too.

Expect parity with coverage.py within a couple of percent; that margin
is why the CI ``--cov-fail-under`` floor sits below the measured number
(the floor-raise workflow is documented in docs/batching.md's sibling,
docs/benchmarks.md — raise the floor only from a number this script or
CI actually reported).

Usage::

    PYTHONPATH=src python tools/measure_coverage.py [pytest args]

Defaults to the full quiet suite when no pytest args are given. Prints a
per-module table and the total percentage, and exits with pytest's exit
code so it can wrap the suite in automation.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"

_executed: dict[str, set[int]] = {}
_src_prefix = str(SRC)


def _local_tracer(frame, event, arg):
    if event == "line":
        _executed.setdefault(frame.f_code.co_filename, set()).add(
            frame.f_lineno
        )
    return _local_tracer


def _global_tracer(frame, event, arg):
    if event != "call":
        return None
    code = frame.f_code
    if not code.co_filename.startswith(_src_prefix):
        return None
    # The def/class line itself executes as the enclosing scope's 'line'
    # event; the call event marks the body entry.
    _executed.setdefault(code.co_filename, set()).add(frame.f_lineno)
    return _local_tracer


def _executable_lines(path: Path) -> set[int]:
    """Line numbers coverage.py would consider executable, via bytecode."""
    lines: set[int] = set()
    try:
        top = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    except SyntaxError:
        return lines
    stack = [top]
    while stack:
        code = stack.pop()
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
        for _, _, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
    return lines


def main(argv: list[str]) -> int:
    pytest_args = argv or ["-q", "-p", "no:cacheprovider", "tests"]

    sys.settrace(_global_tracer)
    threading.settrace(_global_tracer)
    import pytest  # imported after the tracer: conftest imports count

    exit_code = pytest.main(pytest_args)
    sys.settrace(None)
    threading.settrace(None)

    rows = []
    total_executable = total_executed = 0
    for path in sorted(SRC.rglob("*.py")):
        executable = _executable_lines(path)
        if not executable:
            continue
        executed = _executed.get(str(path), set()) & executable
        total_executable += len(executable)
        total_executed += len(executed)
        rows.append(
            (
                str(path.relative_to(REPO)),
                len(executed),
                len(executable),
                100.0 * len(executed) / len(executable),
            )
        )

    width = max(len(name) for name, *_ in rows) if rows else 20
    print(f"\n{'module':<{width}} {'run':>6} {'lines':>6} {'cover':>7}")
    for name, executed, executable, pct in rows:
        print(f"{name:<{width}} {executed:>6} {executable:>6} {pct:>6.1f}%")
    total_pct = (
        100.0 * total_executed / total_executable if total_executable else 0.0
    )
    print(
        f"{'TOTAL':<{width}} {total_executed:>6} {total_executable:>6} "
        f"{total_pct:>6.1f}%"
    )
    return int(exit_code)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
