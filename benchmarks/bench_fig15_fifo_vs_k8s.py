"""Figure 15: standalone FIFO vs Spark/Kubernetes default on one batch.

Identical jobs, identical arrivals, two cluster behaviours. The paper's
observations: the standalone FIFO holds (nearly) all executors while jobs
queue behind it, whereas the Kubernetes default's busy-executor count drops
when few jobs are in the system; the default improves both carbon and JCT.
"""


from repro.experiments.figures import fig15_fifo_vs_k8s
from repro.simulator.metrics import compare_to_baseline

from _report import emit, run_once


def test_fig15_fifo_vs_k8s_default(benchmark):
    data = run_once(
        benchmark, fig15_fifo_vs_k8s, num_executors=25, num_jobs=20,
        resolution=5.0,
    )
    lines = []
    occupancy = {}
    for name in ("fifo-standalone", "k8s-default"):
        busy = data.busy[name]
        jobs = data.jobs_in_system[name]
        result = data.results[name]
        active = busy[: int(result.ect / 5.0)]
        occupancy[name] = float(active.mean())
        lines.append(
            f"{name:<16} mean busy {active.mean():5.1f}/25, "
            f"peak jobs in system {jobs.max():.0f}, ECT {result.ect:7.0f}s"
        )
    m = compare_to_baseline(
        data.results["k8s-default"], data.results["fifo-standalone"]
    )
    lines.append(
        f"k8s default vs FIFO: carbon reduction {m.carbon_reduction_pct:+.1f}%, "
        f"JCT x{m.jct_ratio:.2f} (paper: 18.8% reduction, x0.78 JCT)"
    )
    emit("Figure 15 — standalone FIFO vs Spark/Kubernetes default", lines)
    benchmark.extra_info["carbon_red_pct"] = round(m.carbon_reduction_pct, 2)
    benchmark.extra_info["jct_ratio"] = round(m.jct_ratio, 3)
    # Hoarding keeps standalone occupancy above the default's...
    assert occupancy["fifo-standalone"] > occupancy["k8s-default"]
    # ...and the default improves carbon and JCT, as in Appendix A.1.2.
    assert m.carbon_reduction_pct > 0.0
    assert m.jct_ratio < 1.0
