"""Extension: robustness of PCAPS and CAP to carbon-forecast error.

The paper assumes exact ``L``/``U`` bounds from a 48-hour forecast
(Section 6.1) and notes that threshold algorithms "are often close to
optimal provided their inputs are reasonably accurate" (Section 3). This
bench quantifies that sensitivity in our reproduction: multiplicative
log-normal error on the forecast bounds at σ ∈ {0, 0.1, 0.3}.

Expectation: savings degrade gracefully — moderate error keeps most of the
carbon reduction, and neither scheduler collapses below the carbon-agnostic
baseline.
"""

from repro.carbon.api import CarbonIntensityAPI
from repro.core.cap import CAPProvisioner
from repro.core.pcaps import PCAPSScheduler
from repro.experiments.runner import ExperimentConfig, carbon_trace_for
from repro.schedulers.decima import DecimaScheduler
from repro.simulator.engine import ClusterConfig, Simulation
from repro.simulator.metrics import compare_to_baseline
from repro.workloads.batch import WorkloadSpec, build_workload

from _report import emit, run_once

SIGMAS = (0.0, 0.1, 0.3)


def test_forecast_error_robustness(benchmark):
    def measure():
        config = ExperimentConfig(
            grid="DE",
            num_executors=20,
            workload=WorkloadSpec(family="tpch", num_jobs=15),
            trace_hours=2500,
            seed=5,
        )
        trace = carbon_trace_for(config)
        subs = build_workload(config.workload, seed=config.seed)
        cluster = ClusterConfig(num_executors=config.num_executors)
        base = Simulation(
            cluster, DecimaScheduler(seed=0), CarbonIntensityAPI(trace)
        ).run(subs)
        rows = []
        for sigma in SIGMAS:
            api = CarbonIntensityAPI(trace, forecast_error_std=sigma, seed=9)
            pcaps = Simulation(
                cluster,
                PCAPSScheduler(DecimaScheduler(seed=0), gamma=0.7),
                api,
            ).run(subs)
            api2 = CarbonIntensityAPI(trace, forecast_error_std=sigma, seed=9)
            cap = Simulation(
                cluster,
                DecimaScheduler(seed=0),
                api2,
                provisioner=CAPProvisioner(
                    total_executors=config.num_executors, min_quota=4
                ),
            ).run(subs)
            rows.append(
                (
                    sigma,
                    compare_to_baseline(pcaps, base),
                    compare_to_baseline(cap, base),
                )
            )
        return rows

    rows = run_once(benchmark, measure)
    lines = [
        f"{'sigma':>6} {'pcaps_red%':>11} {'pcaps_ECT':>10} "
        f"{'cap_red%':>9} {'cap_ECT':>8}"
    ]
    for sigma, pcaps_m, cap_m in rows:
        lines.append(
            f"{sigma:>6.2f} {pcaps_m.carbon_reduction_pct:>10.1f}% "
            f"{pcaps_m.ect_ratio:>10.3f} {cap_m.carbon_reduction_pct:>8.1f}% "
            f"{cap_m.ect_ratio:>8.3f}"
        )
    emit("Extension — forecast-error robustness (DE, vs Decima)", lines)
    benchmark.extra_info["rows"] = [
        (s, round(p.carbon_reduction_pct, 2), round(c.carbon_reduction_pct, 2))
        for s, p, c in rows
    ]
    exact_pcaps = rows[0][1].carbon_reduction_pct
    worst_pcaps = min(m.carbon_reduction_pct for _, m, _ in rows)
    # Graceful degradation: even at sigma=0.3 PCAPS keeps more than a third
    # of its exact-forecast savings and never burns more than Decima + 5%.
    assert worst_pcaps > min(exact_pcaps / 3.0, exact_pcaps) - 1.0
    assert all(m.carbon_reduction_pct > -5.0 for _, m, _ in rows)
