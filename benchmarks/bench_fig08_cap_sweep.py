"""Figure 8: CAP carbon/ECT trade-off vs B (prototype mode).

Five minimum-quota settings relative to the Spark/Kubernetes default, DE
grid. Lower B = more carbon-aware: more carbon saved, longer ECT, and a
worse trade-off than PCAPS at matched savings (compare bench_fig07).

Runs through the campaign layer: the ``fig8`` preset fans the six trials
(five B settings + the baseline) across a process pool and the sweep points
are aggregated from the stored records.
"""

from repro.campaign import CampaignRunner, ResultStore, campaign_presets
from repro.campaign.reports import sweep_points

from _report import emit, run_once


def _run_campaign(store_path):
    spec = campaign_presets()["fig8"]
    run = CampaignRunner(ResultStore(store_path)).run(spec)
    assert not run.failures, [r.error for r in run.failures]
    return sweep_points(run.records, baseline=spec.baseline, parameter="cap_min_quota")


def test_fig8_cap_b_sweep_prototype(benchmark, tmp_path):
    points = run_once(benchmark, _run_campaign, tmp_path / "fig8.jsonl")
    lines = [f"{'B':>5} {'carbon_red%':>12} {'ECT':>7} {'JCT':>7}"]
    for p in points:
        lines.append(
            f"{p.parameter:>5.0f} {p.carbon_reduction_pct:>11.1f}% "
            f"{p.ect_ratio:>7.3f} {p.jct_ratio:>7.3f}"
        )
    emit("Figure 8 — CAP B sweep (prototype mode, DE)", lines)
    benchmark.extra_info["points"] = [
        (p.parameter, round(p.carbon_reduction_pct, 2), round(p.ect_ratio, 3))
        for p in points
    ]
    # Smaller B (more carbon-aware) saves more carbon.
    assert points[0].carbon_reduction_pct > points[-1].carbon_reduction_pct
