"""Figure 8: CAP carbon/ECT trade-off vs B (prototype mode).

Five minimum-quota settings relative to the Spark/Kubernetes default, DE
grid. Lower B = more carbon-aware: more carbon saved, longer ECT, and a
worse trade-off than PCAPS at matched savings (compare bench_fig07).
"""

from repro.experiments.figures import cap_b_sweep
from repro.experiments.runner import ExperimentConfig
from repro.workloads.batch import WorkloadSpec

from _report import emit, run_once

QUOTAS = (4, 8, 14, 22, 32)  # of K=40


def _config():
    return ExperimentConfig(
        grid="DE",
        mode="kubernetes",
        num_executors=40,
        per_job_cap=10,
        workload=WorkloadSpec(family="tpch", num_jobs=25, mean_interarrival=45.0),
        seed=5,
    )


def test_fig8_cap_b_sweep_prototype(benchmark):
    points = run_once(
        benchmark, cap_b_sweep, quotas=QUOTAS,
        underlying="k8s-default", config=_config(),
    )
    lines = [f"{'B':>5} {'carbon_red%':>12} {'ECT':>7} {'JCT':>7}"]
    for p in points:
        lines.append(
            f"{p.parameter:>5.0f} {p.carbon_reduction_pct:>11.1f}% "
            f"{p.ect_ratio:>7.3f} {p.jct_ratio:>7.3f}"
        )
    emit("Figure 8 — CAP B sweep (prototype mode, DE)", lines)
    benchmark.extra_info["points"] = [
        (p.parameter, round(p.carbon_reduction_pct, 2), round(p.ect_ratio, 3))
        for p in points
    ]
    # Smaller B (more carbon-aware) saves more carbon.
    assert points[0].carbon_reduction_pct > points[-1].carbon_reduction_pct
