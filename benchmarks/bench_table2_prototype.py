"""Table 2: prototype-style top-line results (Kubernetes mode, 6 grids).

Schedulers: Spark/Kubernetes default, Decima, CAP (over the default), PCAPS,
normalized to the default and averaged over the six grids. Paper: PCAPS
-32.9% carbon at ECT 1.013; CAP -24.7% at ECT 1.126.
"""

from repro.experiments.tables import (
    PAPER_TABLE2,
    format_metric_table,
    table2_rows,
)

from _report import emit, run_once


def test_table2_prototype_topline(benchmark):
    rows = run_once(benchmark, table2_rows)
    emit(
        "Table 2 — prototype (Kubernetes mode), normalized to default",
        [format_metric_table(rows, PAPER_TABLE2)],
    )
    for name, m in rows.items():
        benchmark.extra_info[name] = {
            "carbon_red_pct": round(m.carbon_reduction_pct, 2),
            "ect": round(m.ect_ratio, 3),
            "jct": round(m.jct_ratio, 3),
        }
    # Shape: both carbon-aware schedulers reduce carbon; PCAPS is not
    # dominated by CAP; Decima alone is roughly carbon-neutral. Magnitudes
    # are smaller than the paper's 100-executor prototype (see
    # EXPERIMENTS.md for the scale discussion).
    assert rows["pcaps"].carbon_reduction_pct > 5.0
    assert rows["cap-k8s-default"].carbon_reduction_pct > 3.0
    assert (
        rows["pcaps"].carbon_reduction_pct
        > rows["cap-k8s-default"].carbon_reduction_pct - 3.0
    )
    assert abs(rows["decima"].carbon_reduction_pct) < 15.0
