"""Figure 7: PCAPS carbon/ECT trade-off vs γ (prototype mode).

Five degrees of carbon awareness relative to the Spark/Kubernetes default,
DE grid. Carbon savings should grow with γ, steeply near γ -> 1, at the
expense of longer end-to-end completion time.
"""

from repro.experiments.figures import pcaps_gamma_sweep
from repro.experiments.runner import ExperimentConfig
from repro.workloads.batch import WorkloadSpec

from _report import emit, run_once

GAMMAS = (0.1, 0.25, 0.5, 0.75, 0.9)


def _config():
    return ExperimentConfig(
        grid="DE",
        mode="kubernetes",
        num_executors=40,
        per_job_cap=10,
        workload=WorkloadSpec(family="tpch", num_jobs=25, mean_interarrival=45.0),
        seed=5,
    )


def test_fig7_pcaps_gamma_sweep_prototype(benchmark):
    points = run_once(
        benchmark, pcaps_gamma_sweep, gammas=GAMMAS,
        baseline="k8s-default", config=_config(),
    )
    lines = [f"{'gamma':>6} {'carbon_red%':>12} {'ECT':>7} {'JCT':>7}"]
    for p in points:
        lines.append(
            f"{p.parameter:>6.2f} {p.carbon_reduction_pct:>11.1f}% "
            f"{p.ect_ratio:>7.3f} {p.jct_ratio:>7.3f}"
        )
    emit("Figure 7 — PCAPS γ sweep (prototype mode, DE)", lines)
    benchmark.extra_info["points"] = [
        (p.parameter, round(p.carbon_reduction_pct, 2), round(p.ect_ratio, 3))
        for p in points
    ]
    # Carbon savings grow with γ (allowing small non-monotonic noise).
    assert points[-1].carbon_reduction_pct > points[0].carbon_reduction_pct
    assert max(p.carbon_reduction_pct for p in points) > 10.0
