"""Figure 7: PCAPS carbon/ECT trade-off vs γ (prototype mode).

Five degrees of carbon awareness relative to the Spark/Kubernetes default,
DE grid. Carbon savings should grow with γ, steeply near γ -> 1, at the
expense of longer end-to-end completion time.

Runs through the campaign layer: the ``fig7`` preset fans the six trials
(five γ settings + the baseline) across a process pool and the sweep points
are aggregated from the stored records.
"""

from repro.campaign import CampaignRunner, ResultStore, campaign_presets
from repro.campaign.reports import sweep_points

from _report import emit, run_once


def _run_campaign(store_path):
    spec = campaign_presets()["fig7"]
    run = CampaignRunner(ResultStore(store_path)).run(spec)
    assert not run.failures, [r.error for r in run.failures]
    return sweep_points(run.records, baseline=spec.baseline, parameter="gamma")


def test_fig7_pcaps_gamma_sweep_prototype(benchmark, tmp_path):
    points = run_once(benchmark, _run_campaign, tmp_path / "fig7.jsonl")
    lines = [f"{'gamma':>6} {'carbon_red%':>12} {'ECT':>7} {'JCT':>7}"]
    for p in points:
        lines.append(
            f"{p.parameter:>6.2f} {p.carbon_reduction_pct:>11.1f}% "
            f"{p.ect_ratio:>7.3f} {p.jct_ratio:>7.3f}"
        )
    emit("Figure 7 — PCAPS γ sweep (prototype mode, DE)", lines)
    benchmark.extra_info["points"] = [
        (p.parameter, round(p.carbon_reduction_pct, 2), round(p.ect_ratio, 3))
        for p in points
    ]
    # Carbon savings grow with γ (allowing small non-monotonic noise).
    assert points[-1].carbon_reduction_pct > points[0].carbon_reduction_pct
    assert max(p.carbon_reduction_pct for p in points) > 10.0
