"""Figure 20: scheduler invocation latency vs queue length.

The paper reports FIFO/CAP-FIFO below 5 ms per invocation regardless of
queue depth, while Decima/PCAPS (policy inference) grow with the number of
queued jobs, with PCAPS adding a small constant over Decima — all far below
the runtimes of big-data stages.
"""


from repro.experiments.figures import latency_profile

from _report import emit, run_once

QUEUE_LENGTHS = (1, 5, 10, 25)


def test_fig20_scheduler_latency(benchmark):
    rows = run_once(
        benchmark, latency_profile, queue_lengths=QUEUE_LENGTHS,
        schedulers=("fifo", "cap-fifo", "decima", "pcaps"),
        num_executors=25,
    )
    lines = [f"{'scheduler':<10} {'queued':>7} {'avg_ms':>9} {'invocations':>12}"]
    for r in rows:
        lines.append(
            f"{r.scheduler:<10} {r.queued_jobs:>7} {r.avg_latency_ms:>9.3f} "
            f"{r.invocations:>12}"
        )
    emit("Figure 20 — scheduler invocation latency", lines)

    by = {(r.scheduler, r.queued_jobs): r.avg_latency_ms for r in rows}
    benchmark.extra_info["latency_ms"] = {
        f"{s}@{q}": round(by[(s, q)], 3) for (s, q) in by
    }
    # Decima-family latency grows with queue depth; FIFO stays flat & small.
    assert by[("decima", 25)] > by[("decima", 1)]
    assert by[("pcaps", 25)] > by[("pcaps", 1)]
    assert by[("fifo", 25)] < by[("decima", 25)]
    # Everything stays in the "insignificant vs big-data stages" regime.
    assert max(by.values()) < 100.0
