"""Theory benches: Theorems 4.3-4.6, Figure 21's bound, and ablations.

- Theorem 4.4/4.6: the carbon-savings decomposition is an identity — we
  verify predicted == measured on real schedules.
- Theorem 4.5 / Figure 21: ``OPT_M <= (K/M) OPT_K`` on exact schedules of
  random DAGs, and CAP's measured stretch stays below the analytic CSF.
- Ablations called out in DESIGN.md: Ψ shape (exponential vs linear),
  PCAPS parallelism mode, and the forecast lookahead window.
"""

import numpy as np

from repro.carbon.api import CarbonIntensityAPI
from repro.carbon.grids import synthesize_trace
from repro.core.analysis import (
    cap_stretch_factor,
    savings_decomposition,
)
from repro.core.pcaps import PCAPSScheduler
from repro.dag.graph import JobDAG, Stage
from repro.experiments.runner import ExperimentConfig, run_experiment, run_matchup
from repro.schedulers.decima import DecimaScheduler
from repro.schedulers.optimal import optimal_time_schedule
from repro.simulator.engine import ClusterConfig, Simulation
from repro.simulator.metrics import compare_to_baseline
from repro.workloads.batch import WorkloadSpec, build_workload

from _report import emit, run_once


def _random_single_task_dag(rng, n):
    stages = []
    for sid in range(n):
        parents = tuple(
            int(p) for p in np.unique(rng.integers(0, sid, size=rng.integers(0, 3)))
        ) if sid else ()
        stages.append(Stage(sid, 1, float(rng.integers(1, 4)), parents=parents))
    return JobDAG(stages)


def test_fig21_machine_scaling_bound(benchmark):
    """``OPT_M(J) <= (K/M) * OPT_K(J)`` (Appendix B.2.1, Fig. 21)."""

    def measure():
        rng = np.random.default_rng(0)
        rows = []
        for trial in range(6):
            dag = _random_single_task_dag(rng, n=int(rng.integers(5, 8)))
            flat = [1.0] * 64
            opt_k = optimal_time_schedule(dag, 4, flat).makespan_steps
            opt_m = optimal_time_schedule(dag, 2, flat).makespan_steps
            rows.append((trial, opt_m, opt_k, (4 / 2) * opt_k))
        return rows

    rows = run_once(benchmark, measure)
    lines = [f"{'trial':>5} {'OPT_2':>6} {'OPT_4':>6} {'(K/M)OPT_4':>11}"]
    for trial, opt_m, opt_k, bound in rows:
        lines.append(f"{trial:>5} {opt_m:>6} {opt_k:>6} {bound:>11.1f}")
        assert opt_m <= bound + 1e-9
        assert opt_k <= opt_m  # more machines never hurt
    emit("Figure 21 — OPT_M <= (K/M)·OPT_K on exact schedules", lines)


def test_theorem_44_savings_identity(benchmark):
    """Predicted savings W(s- - s+ - c_tail) equals measured savings."""

    def measure():
        config = ExperimentConfig(
            grid="DE",
            num_executors=16,
            workload=WorkloadSpec(family="tpch", num_jobs=10),
            trace_hours=2000,
            seed=3,
        )
        results = run_matchup(["decima", "pcaps"], config)
        return savings_decomposition(results["decima"], results["pcaps"])

    d = run_once(benchmark, measure)
    emit(
        "Theorem 4.4 — savings decomposition (PCAPS vs Decima)",
        [
            f"W (excess work):      {d.excess_work:12.1f} executor-seconds",
            f"s- (avoided @):       {d.s_minus:12.1f} gCO2/kWh",
            f"s+ (opportunistic @): {d.s_plus:12.1f} gCO2/kWh",
            f"c_tail (make-up @):   {d.c_tail:12.1f} gCO2/kWh",
            f"predicted savings:    {d.predicted_savings:12.3e}",
            f"measured savings:     {d.measured_savings:12.3e}",
        ],
    )
    benchmark.extra_info["predicted"] = d.predicted_savings
    benchmark.extra_info["measured"] = d.measured_savings
    assert np.isclose(d.predicted_savings, d.measured_savings, rtol=1e-9)


def test_theorem_45_cap_csf_bound(benchmark):
    """CAP's measured makespan stretch stays below the analytic CSF times
    the Graham bound slack (single-job setting of the theorem)."""

    def measure():
        from repro.core.cap import CAPProvisioner
        from repro.schedulers.fifo import KubernetesDefaultScheduler
        from repro.workloads.arrivals import JobSubmission

        trace = synthesize_trace("DE", hours=400, seed=0)
        dag = JobDAG(
            [
                Stage(0, 8, 40.0),
                Stage(1, 6, 30.0, parents=(0,)),
                Stage(2, 4, 20.0, parents=(1,)),
            ]
        )
        K = 8
        rows = []
        for B in (2, 4, 6, 8):
            baseline = Simulation(
                ClusterConfig(num_executors=K, executor_move_delay=0.0),
                KubernetesDefaultScheduler(),
                CarbonIntensityAPI(trace),
            ).run([JobSubmission(0.0, dag, 0)])
            cap = CAPProvisioner(total_executors=K, min_quota=B)
            capped = Simulation(
                ClusterConfig(num_executors=K, executor_move_delay=0.0),
                KubernetesDefaultScheduler(),
                CarbonIntensityAPI(trace),
                provisioner=cap,
            ).run([JobSubmission(0.0, dag, 0)])
            m_seen = cap.min_quota_seen()
            stretch = capped.ect / baseline.ect
            rows.append((B, m_seen, stretch, cap_stretch_factor(K, m_seen)))
        return rows

    rows = run_once(benchmark, measure)
    lines = [f"{'B':>3} {'M(B,c)':>7} {'measured':>9} {'CSF bound':>10}"]
    for B, m_seen, stretch, csf in rows:
        lines.append(f"{B:>3} {m_seen:>7} {stretch:>9.3f} {csf:>10.3f}")
        # The CSF bounds the *worst-case* stretch; measured stretch must not
        # exceed it by more than deferral slack (one carbon step per wave).
        assert stretch <= max(csf, 1.0) * 1.5 + 0.5
    emit("Theorem 4.5 — CAP carbon stretch factor", lines)


def test_corollary_b1_utilization_profile(benchmark):
    """Corollary B.1's premise: carbon-aware utilization ρ(c) decreases
    with carbon intensity, while a carbon-agnostic scheduler's is flat."""

    def measure():
        from repro.core.analysis import utilization_by_intensity

        # Corollary B.1 assumes outstanding work at all times: submit the
        # whole batch up front so the queue stays saturated.
        config = ExperimentConfig(
            grid="DE",
            num_executors=8,
            workload=WorkloadSpec(
                family="tpch", num_jobs=25, mean_interarrival=1e-6
            ),
            gamma=0.8,
            trace_hours=2500,
            seed=6,
        )
        results = run_matchup(["decima", "pcaps"], config)
        return {
            name: utilization_by_intensity(result, num_bins=4)
            for name, result in results.items()
        }

    profiles = run_once(benchmark, measure)
    lines = []
    slopes = {}
    for name, profile in profiles.items():
        lines.append(f"--- {name}: utilization by carbon-intensity bin")
        for center, utilization in profile:
            bar = "#" * int(round(30 * utilization))
            lines.append(f"  c≈{center:5.0f}: {utilization:5.2f} {bar}")
        xs = np.array([c for c, _ in profile])
        ys = np.array([u for _, u in profile])
        slopes[name] = float(np.polyfit(xs, ys, 1)[0]) if len(xs) > 1 else 0.0
    emit("Corollary B.1 — utilization vs carbon intensity ρ(c)", lines)
    benchmark.extra_info["slopes"] = {
        k: round(v, 6) for k, v in slopes.items()
    }
    # PCAPS throttles harder as carbon rises: its slope is more negative
    # than carbon-agnostic Decima's.
    assert slopes["pcaps"] <= slopes["decima"] + 1e-9


def test_ablation_threshold_shape_and_parallelism(benchmark):
    """DESIGN.md ablations: Ψ shape, parallelism mode, forecast window."""

    def measure():
        config = ExperimentConfig(
            grid="DE",
            num_executors=16,
            workload=WorkloadSpec(family="tpch", num_jobs=10),
            trace_hours=2000,
            seed=4,
        )
        from repro.experiments.runner import carbon_trace_for

        trace = carbon_trace_for(config)
        subs = build_workload(config.workload, seed=config.seed)
        base = run_experiment(config.with_scheduler("decima"), carbon_trace=trace)
        variants = {
            "exponential+decay": PCAPSScheduler(
                DecimaScheduler(seed=0), gamma=0.6
            ),
            "linear+decay": PCAPSScheduler(
                DecimaScheduler(seed=0), gamma=0.6, threshold_shape="linear"
            ),
            "exponential+paper-P": PCAPSScheduler(
                DecimaScheduler(seed=0), gamma=0.6, parallelism_mode="paper"
            ),
            "exponential+no-P": PCAPSScheduler(
                DecimaScheduler(seed=0), gamma=0.6, parallelism_mode="off"
            ),
            "defer-per-sample": PCAPSScheduler(
                DecimaScheduler(seed=0), gamma=0.6, defer_scope="sample"
            ),
        }
        rows = []
        for label, scheduler in variants.items():
            sim = Simulation(
                ClusterConfig(num_executors=16),
                scheduler,
                CarbonIntensityAPI(trace),
            )
            result = sim.run(subs)
            m = compare_to_baseline(result, base)
            rows.append((label, m.carbon_reduction_pct, m.ect_ratio))
        # Forecast-window ablation: 24 h vs 48 h lookahead.
        for lookahead in (24, 48):
            scheduler = PCAPSScheduler(DecimaScheduler(seed=0), gamma=0.6)
            sim = Simulation(
                ClusterConfig(num_executors=16),
                scheduler,
                CarbonIntensityAPI(trace, lookahead_steps=lookahead),
            )
            result = sim.run(subs)
            m = compare_to_baseline(result, base)
            rows.append((f"lookahead-{lookahead}h", m.carbon_reduction_pct, m.ect_ratio))
        return rows

    rows = run_once(benchmark, measure)
    lines = [f"{'variant':<22} {'carbon_red%':>12} {'ECT':>7}"]
    for label, carbon, ect in rows:
        lines.append(f"{label:<22} {carbon:>11.1f}% {ect:>7.3f}")
    emit("Ablations — Ψ shape / parallelism mode / forecast window", lines)
    by = {label: (carbon, ect) for label, carbon, ect in rows}
    benchmark.extra_info["ablations"] = by
    # Linear Ψ is more permissive than exponential (defers less), so it
    # cannot save more carbon than the exponential design.
    assert by["linear+decay"][0] <= by["exponential+decay"][0] + 2.0
    # The literal paper parallelism cap costs extra ECT at equal gamma.
    assert by["exponential+paper-P"][1] >= by["exponential+no-P"][1] - 0.05
