"""Figure 10: per-grid carbon reduction and ECT (prototype mode).

PCAPS, CAP, and Decima against the Spark/Kubernetes default across all six
grids. The paper's relationship: more variable grids (higher CoV — more
renewables) admit more carbon reduction; flat ZA admits almost none.
"""

import numpy as np

from repro.experiments.figures import grid_comparison

from _report import emit, run_once


def test_fig10_grid_comparison_prototype(benchmark):
    rows = run_once(
        benchmark, grid_comparison,
        mode="kubernetes",
        schedulers=("decima", "cap-k8s-default", "pcaps"),
        baseline="k8s-default",
        num_executors=24,
        num_jobs=15,
    )
    lines = [
        f"{'grid':<7} {'cov':>6} {'scheduler':<18} {'carbon_red%':>12} {'ECT':>7}"
    ]
    for r in rows:
        lines.append(
            f"{r.grid:<7} {r.coeff_var:>6.3f} {r.scheduler:<18} "
            f"{r.carbon_reduction_pct:>11.1f}% {r.ect_ratio:>7.3f}"
        )
    emit("Figure 10 — per-grid behaviour (prototype mode)", lines)

    pcaps = {r.grid: r for r in rows if r.scheduler == "pcaps"}
    covs = np.array([r.coeff_var for r in pcaps.values()])
    reductions = np.array([r.carbon_reduction_pct for r in pcaps.values()])
    correlation = float(np.corrcoef(covs, reductions)[0, 1])
    benchmark.extra_info["cov_reduction_correlation"] = round(correlation, 3)
    # Variability begets savings: positive correlation, ZA near the bottom.
    assert correlation > 0.2
    assert pcaps["ZA"].carbon_reduction_pct <= max(
        r.carbon_reduction_pct for r in pcaps.values()
    ) - 5.0
