"""Figure 1: the motivating example — FIFO vs T-OPT vs C-OPT vs PCAPS.

Paper headline numbers for the figure: C-OPT -51.2% carbon at +28.5% time;
PCAPS -23.1% carbon at roughly FIFO's completion time. Our reproduction
lands C-OPT near -60% at +28.6% and PCAPS near -30% at +7%.
"""

from repro.experiments.motivation import fig1_comparison

from _report import emit, run_once


def test_fig1_motivating_example(benchmark):
    rows = run_once(benchmark, fig1_comparison, gamma=0.5)
    lines = [
        f"{'policy':<14} {'hours':>7} {'carbon':>10} {'Δcarbon':>9} {'Δtime':>8}"
    ]
    for r in rows:
        lines.append(
            f"{r.policy:<14} {r.completion_hours:>7.1f} {r.carbon:>10.0f} "
            f"{r.carbon_vs_fifo_pct:>+8.1f}% {r.time_vs_fifo_pct:>+7.1f}%"
        )
    emit("Figure 1 — motivating DAG, 18-hour trace, 2 machines", lines)

    by_name = {r.policy.split("(")[0]: r for r in rows}
    benchmark.extra_info["copt_carbon_pct"] = by_name["C-OPT"].carbon_vs_fifo_pct
    benchmark.extra_info["pcaps_carbon_pct"] = by_name["PCAPS"].carbon_vs_fifo_pct
    # Shape assertions (the figure's qualitative content).
    assert by_name["T-OPT"].completion_hours < by_name["FIFO"].completion_hours
    assert by_name["C-OPT"].carbon_vs_fifo_pct < -40.0
    assert by_name["PCAPS"].carbon_vs_fifo_pct < -10.0
