"""Figure 9: per-trial average JCT vs per-job carbon, quadrant analysis.

Each trial starts at a random point of the carbon trace; points are
normalized so the Spark/Kubernetes default sits at (1, 1). The paper finds
PCAPS below the carbon break-even line in 95.8% of trials and in the
"cheaper AND faster" quadrant far more often than CAP (25.7% vs 2.1%).
"""

from repro.experiments.figures import fig9_perjob_trials
from repro.experiments.runner import ExperimentConfig
from repro.workloads.batch import WorkloadSpec

from _report import emit, run_once


def test_fig9_perjob_quadrants(benchmark):
    config = ExperimentConfig(
        mode="kubernetes",
        num_executors=24,
        per_job_cap=6,
        workload=WorkloadSpec(family="tpch", num_jobs=15, mean_interarrival=45.0),
    )
    points, quadrants = run_once(
        benchmark, fig9_perjob_trials, num_trials=10, config=config
    )
    lines = [f"{'scheduler':<18} {'trial':>5} {'JCT_ratio':>10} {'carbon_ratio':>13}"]
    for p in points:
        lines.append(
            f"{p.scheduler:<18} {p.trial:>5} {p.jct_ratio:>10.3f} "
            f"{p.carbon_ratio:>13.3f}"
        )
    for name, stats in quadrants.items():
        lines.append(
            f"{name}: {stats['less_carbon']:.1f}% of trials cut carbon; "
            f"{stats['less_carbon_and_faster']:.1f}% cut carbon AND JCT"
        )
    emit("Figure 9 — per-job carbon vs JCT quadrants", lines)
    benchmark.extra_info["quadrants"] = quadrants
    # PCAPS cuts per-job carbon in the large majority of trials.
    assert quadrants["pcaps"]["less_carbon"] >= 70.0
    # PCAPS lands in the win-win quadrant at least as often as CAP.
    assert (
        quadrants["pcaps"]["less_carbon_and_faster"]
        >= quadrants["cap-k8s-default"]["less_carbon_and_faster"]
    )
