"""Figure 5: 48-hour carbon-intensity snapshots for six grids.

Prints a compact sparkline-style rendering of each grid's 48-hour window
plus its summary statistics; the paper's observation — solar/wind-heavy
grids (CAISO, DE, ON) swing hard while coal-heavy ZA is flat — should be
visible directly.
"""

import numpy as np

from repro.experiments.figures import fig5_series

from _report import emit, run_once

_BARS = " ▁▂▃▄▅▆▇█"


def _sparkline(values: np.ndarray) -> str:
    lo, hi = values.min(), values.max()
    span = max(hi - lo, 1e-9)
    return "".join(
        _BARS[int((v - lo) / span * (len(_BARS) - 1))] for v in values
    )


def test_fig5_carbon_snapshots(benchmark):
    series = run_once(benchmark, fig5_series, hours=48)
    lines = []
    swings = {}
    for code, values in series.items():
        swing = (values.max() - values.min()) / values.mean()
        swings[code] = swing
        lines.append(
            f"{code:<6} [{values.min():4.0f}, {values.max():4.0f}] "
            f"swing {swing:4.2f}  {_sparkline(values)}"
        )
    emit("Figure 5 — 48 h carbon intensity per grid", lines)
    benchmark.extra_info["swings"] = {k: round(v, 3) for k, v in swings.items()}
    # Renewable-heavy grids swing more than coal-heavy ZA.
    assert swings["ZA"] == min(swings.values())
    assert max(swings["CAISO"], swings["DE"], swings["ON"]) > 2 * swings["ZA"]
