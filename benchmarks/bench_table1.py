"""Table 1: carbon-intensity trace characteristics for six grids.

Regenerates the min / max / mean / coefficient-of-variation table from the
synthetic grid models, printed next to the paper's values.
"""

from repro.experiments.tables import (
    format_table1,
    table1_error_summary,
    table1_rows,
)

from _report import emit, run_once


def test_table1_trace_characteristics(benchmark):
    rows = run_once(benchmark, table1_rows)  # full 26,304-hour traces
    errors = table1_error_summary(rows)
    benchmark.extra_info["mean_rel_err"] = errors["mean_rel_err"]
    benchmark.extra_info["cov_rel_err"] = errors["cov_rel_err"]
    emit(
        "Table 1 — carbon trace characteristics (measured vs paper)",
        [
            format_table1(rows),
            f"mean relative error: {errors['mean_rel_err']:.3f}, "
            f"CoV relative error: {errors['cov_rel_err']:.3f}",
        ],
    )
    assert errors["mean_rel_err"] < 0.05
