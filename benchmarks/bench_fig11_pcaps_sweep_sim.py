"""Figure 11: PCAPS γ sweep in the simulator (standalone mode, vs FIFO).

Same content as Fig. 7 but against the Spark-standalone FIFO baseline, as
in the simulator experiments.
"""

from repro.experiments.figures import pcaps_gamma_sweep
from repro.experiments.runner import ExperimentConfig
from repro.workloads.batch import WorkloadSpec

from _report import emit, run_once

GAMMAS = (0.1, 0.25, 0.5, 0.75, 0.9)


def _config():
    return ExperimentConfig(
        grid="DE",
        mode="standalone",
        num_executors=40,
        workload=WorkloadSpec(family="tpch", num_jobs=25, mean_interarrival=45.0),
        seed=5,
    )


def test_fig11_pcaps_gamma_sweep_simulator(benchmark):
    points = run_once(
        benchmark, pcaps_gamma_sweep, gammas=GAMMAS,
        baseline="fifo", config=_config(),
    )
    lines = [f"{'gamma':>6} {'carbon_red%':>12} {'ECT':>7} {'JCT':>7}"]
    for p in points:
        lines.append(
            f"{p.parameter:>6.2f} {p.carbon_reduction_pct:>11.1f}% "
            f"{p.ect_ratio:>7.3f} {p.jct_ratio:>7.3f}"
        )
    emit("Figure 11 — PCAPS γ sweep (simulator, vs FIFO, DE)", lines)
    benchmark.extra_info["points"] = [
        (p.parameter, round(p.carbon_reduction_pct, 2), round(p.ect_ratio, 3))
        for p in points
    ]
    assert points[-1].carbon_reduction_pct > points[0].carbon_reduction_pct
    assert max(p.carbon_reduction_pct for p in points) > 20.0
