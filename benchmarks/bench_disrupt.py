"""Disruption resilience figure: failover routing vs. riding out the outage.

A pinned scenario — the six-grid federation under a fixed schedule that
takes ON (the clean hydro grid carbon-aware routing concentrates work in)
down mid-batch, curtails DE, and blacks out CAISO's carbon signal — run
three ways on the identical workload:

- ``undisrupted``: the schedule removed (the ceiling);
- ``no-failover``: disruptions hit, nothing reacts — jobs queued in the
  down region wait for recovery;
- ``failover``: arrivals divert around down regions and queued jobs
  migrate out at each outage, paying transfer carbon.

The acceptance gate is the subsystem's headline claim: under the common
deadline (1.25x the undisrupted ECT) failover completes at least as many
jobs as the no-failover baseline, and the carbon price paid for that
resilience is reported explicitly.

Dual-use:

- ``python benchmarks/bench_disrupt.py [--smoke]`` runs standalone and
  writes ``BENCH_disrupt.json`` (CI uploads the smoke variant);
- ``pytest benchmarks/bench_disrupt.py --benchmark-only`` times the full
  scenario under pytest-benchmark like the other benches.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro import __version__
from repro.disrupt import DisruptionEvent, DisruptionSchedule
from repro.experiments.disrupt import (
    disruption_matchup_reports,
    matchup_deadline,
    run_disruption_matchup,
)
from repro.geo import FederationConfig
from repro.workloads.batch import WorkloadSpec


def scenario(smoke: bool) -> FederationConfig:
    if smoke:
        workload = WorkloadSpec(
            family="tpch", num_jobs=12, mean_interarrival=15.0,
            tpch_scales=(2,),
        )
        executors = 6
    else:
        workload = WorkloadSpec(
            family="tpch", num_jobs=48, mean_interarrival=20.0,
            tpch_scales=(2, 10),
        )
        executors = 12
    config = FederationConfig.six_grid(
        scheduler="pcaps", num_executors=executors, workload=workload, seed=1
    )
    horizon = workload.num_jobs * workload.mean_interarrival
    # Pinned, deliberately painful: ON (where carbon-aware routing
    # concentrates work) dies for most of the arrival window, DE loses
    # half its capacity, and CAISO's carbon feed goes stale.
    schedule = DisruptionSchedule(
        events=(
            DisruptionEvent(
                kind="outage", region="on",
                start=0.2 * horizon, end=2.5 * horizon,
            ),
            DisruptionEvent(
                kind="curtailment", region="de",
                start=0.1 * horizon, end=1.5 * horizon,
                capacity_fraction=0.5,
            ),
            DisruptionEvent(
                kind="signal-blackout", region="caiso",
                start=0.0, end=2.0 * horizon,
            ),
        )
    )
    return config.with_disruptions(schedule)


def run_benchmark(smoke: bool) -> dict:
    config = scenario(smoke)
    schedule = config.disruptions
    results = run_disruption_matchup(config)
    reports = disruption_matchup_reports(results, schedule)
    deadline = matchup_deadline(results)
    undisrupted = results["undisrupted"]
    doc = {
        "benchmark": "disrupt-resilience",
        "version": __version__,
        "mode": "smoke" if smoke else "full",
        "num_jobs": config.workload.num_jobs,
        "executors_per_region": config.regions[0].num_executors,
        "routing": config.routing,
        "num_disruption_events": len(schedule),
        "deadline_s": deadline,
        "variants": {
            name: {
                "total_carbon_g": result.total_carbon_g,
                "compute_carbon_g": result.compute_carbon_g,
                "transfer_carbon_g": result.transfer_carbon_g,
                "ect": result.ect,
                "avg_jct": result.avg_jct,
                "jobs_on_time": report.jobs_completed,
                "preempted_tasks": report.preempted_tasks,
                "wasted_executor_s": report.wasted_executor_s,
                "goodput": report.goodput,
                "rerouted_jobs": report.rerouted_jobs,
                "migrated_jobs": report.migrated_jobs,
                "failover_transfer_carbon_g": report.failover_transfer_g,
                "mean_recovery_latency_s": report.mean_recovery_latency_s,
            }
            for name, (result, report) in (
                (n, (results[n], reports[n])) for n in results
            )
        },
        # The headline numbers: what resilience costs in carbon.
        "failover_carbon_delta_vs_undisrupted_g": (
            results["failover"].total_carbon_g - undisrupted.total_carbon_g
        ),
        "failover_carbon_delta_vs_no_failover_g": (
            results["failover"].total_carbon_g
            - results["no-failover"].total_carbon_g
        ),
    }
    return doc


def format_figure(doc: dict) -> list[str]:
    lines = [
        f"disruption resilience — {doc['num_jobs']} jobs, "
        f"{doc['executors_per_region']} executors/region, "
        f"{doc['num_disruption_events']} events, "
        f"deadline {doc['deadline_s']:.0f}s"
    ]
    lines.append(
        f"  {'variant':<13} {'carbon_g':>9} {'ECT':>8} {'on-time':>8} "
        f"{'reroute':>8} {'migrate':>8} {'goodput':>8}"
    )
    for name in ("undisrupted", "no-failover", "failover"):
        v = doc["variants"][name]
        lines.append(
            f"  {name:<13} {v['total_carbon_g']:>9.1f} {v['ect']:>8.1f} "
            f"{v['jobs_on_time']:>4}/{doc['num_jobs']:<3} "
            f"{v['rerouted_jobs']:>8} {v['migrated_jobs']:>8} "
            f"{v['goodput']:>8.3f}"
        )
    lines.append(
        f"  failover carbon delta: "
        f"{doc['failover_carbon_delta_vs_no_failover_g']:+.1f} g vs "
        f"no-failover, {doc['failover_carbon_delta_vs_undisrupted_g']:+.1f} g "
        f"vs undisrupted"
    )
    return lines


def check_acceptance(doc: dict) -> None:
    failover = doc["variants"]["failover"]
    baseline = doc["variants"]["no-failover"]
    assert failover["jobs_on_time"] >= baseline["jobs_on_time"], (
        f"failover must complete at least as many jobs by the deadline "
        f"({failover['jobs_on_time']} < {baseline['jobs_on_time']})"
    )
    assert failover["rerouted_jobs"] + failover["migrated_jobs"] > 0, (
        "the pinned scenario must actually exercise failover"
    )


def write_report(doc: dict, output: str) -> None:
    Path(output).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale CI scenario instead of the full figure",
    )
    parser.add_argument("--output", default="BENCH_disrupt.json")
    args = parser.parse_args(argv)
    doc = run_benchmark(smoke=args.smoke)
    for line in format_figure(doc):
        print(line)
    check_acceptance(doc)
    write_report(doc, args.output)
    print(f"wrote {args.output}")
    return 0


def test_disrupt_resilience(benchmark):
    """pytest-benchmark entry point (full scenario, timed once)."""
    from _report import emit, run_once

    doc = run_once(benchmark, run_benchmark, False)
    emit("Disruption resilience — BENCH_disrupt", format_figure(doc))
    check_acceptance(doc)
    write_report(doc, "BENCH_disrupt.json")
    benchmark.extra_info["jobs_on_time"] = {
        name: v["jobs_on_time"] for name, v in doc["variants"].items()
    }


if __name__ == "__main__":
    sys.exit(main())
