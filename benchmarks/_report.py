"""Shared reporting helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures and prints the
rows it produced (run ``pytest benchmarks/ --benchmark-only -s`` to see
them inline). Key numbers are also attached to the pytest-benchmark
``extra_info`` so they appear in saved benchmark JSON.
"""

from __future__ import annotations

import sys


def emit(title: str, lines: list[str]) -> None:
    """Print a reproduced artifact with a recognizable banner."""
    banner = "=" * max(len(title), 20)
    print(f"\n{banner}\n{title}\n{banner}", flush=True)
    for line in lines:
        print(line, flush=True)
    sys.stdout.flush()


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark an expensive experiment exactly once (no warmup rounds)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
