"""Figure 13: PCAPS vs CAP-Decima carbon/ECT trade-off frontier.

The paper's key comparison isolating *relative importance*: both families
wrap the identical Decima policy; only PCAPS sees the DAG structure. Its
frontier should (weakly) dominate CAP-Decima's — at matched carbon savings,
less added ECT.
"""

import numpy as np

from repro.experiments.figures import fig13_frontier
from repro.experiments.runner import ExperimentConfig
from repro.workloads.batch import WorkloadSpec

from _report import emit, run_once


def _config():
    return ExperimentConfig(
        grid="DE",
        mode="standalone",
        num_executors=40,
        workload=WorkloadSpec(family="tpch", num_jobs=25, mean_interarrival=45.0),
        seed=11,
    )


def _ect_at_saving(points, target_pct):
    """Linear interpolation of ECT at a target carbon saving."""
    pts = sorted(points, key=lambda p: p.carbon_reduction_pct)
    xs = [p.carbon_reduction_pct for p in pts]
    ys = [p.ect_ratio for p in pts]
    return float(np.interp(target_pct, xs, ys))


def test_fig13_pcaps_vs_cap_decima_frontier(benchmark):
    frontier = run_once(
        benchmark, fig13_frontier,
        gammas=(0.2, 0.4, 0.5, 0.6, 0.8, 0.95),
        quotas=(4, 6, 9, 13, 18, 26),
        config=_config(),
    )
    lines = []
    for family, points in frontier.items():
        lines.append(f"--- {family}")
        lines.append(f"{'param':>7} {'carbon_red%':>12} {'ECT':>7}")
        for p in points:
            lines.append(
                f"{p.parameter:>7.2f} {p.carbon_reduction_pct:>11.1f}% "
                f"{p.ect_ratio:>7.3f}"
            )
    pcaps_max = max(p.carbon_reduction_pct for p in frontier["pcaps"])
    cap_max = max(p.carbon_reduction_pct for p in frontier["cap-decima"])
    probe = 0.75 * min(pcaps_max, cap_max)
    pcaps_ect = _ect_at_saving(frontier["pcaps"], probe)
    cap_ect = _ect_at_saving(frontier["cap-decima"], probe)
    lines.append(
        f"at {probe:.1f}% carbon savings: PCAPS ECT {pcaps_ect:.3f} vs "
        f"CAP-Decima ECT {cap_ect:.3f}"
    )
    emit("Figure 13 — trade-off frontier (vs Decima, DE)", lines)
    benchmark.extra_info["probe_pct"] = round(probe, 2)
    benchmark.extra_info["pcaps_ect_at_probe"] = round(pcaps_ect, 3)
    benchmark.extra_info["cap_ect_at_probe"] = round(cap_ect, 3)
    # The paper's claim, in robust form: at matched savings PCAPS's ECT is
    # no worse than CAP-Decima's plus a small tolerance.
    assert pcaps_ect <= cap_ect + 0.05
