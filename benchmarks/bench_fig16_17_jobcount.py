"""Figures 16/17: impact of the total number of jobs (simulator + prototype).

Metrics for PCAPS, CAP-FIFO (or CAP), and Decima relative to the baseline as
the batch grows. The paper finds relative orderings stable, with carbon the
most stable metric, and results "converging" for larger batches.
"""

import numpy as np

from repro.experiments.figures import jobcount_sweep

from _report import emit, run_once

COUNTS = (6, 12, 25, 50)


def _format(rows):
    lines = [
        f"{'jobs':>5} {'scheduler':<18} {'carbon_red%':>12} {'ECT':>7} {'JCT':>7}"
    ]
    for r in rows:
        lines.append(
            f"{r.parameter:>5.0f} {r.scheduler:<18} "
            f"{r.carbon_reduction_pct:>11.1f}% {r.ect_ratio:>7.3f} "
            f"{r.jct_ratio:>7.3f}"
        )
    return lines


def test_fig16_jobcount_sweep_simulator(benchmark):
    rows = run_once(
        benchmark, jobcount_sweep, job_counts=COUNTS,
        schedulers=("decima", "cap-fifo", "pcaps"), baseline="fifo",
        mode="standalone", num_executors=25,
    )
    emit("Figure 16 — job-count sweep (simulator)", _format(rows))
    pcaps = [r for r in rows if r.scheduler == "pcaps"]
    benchmark.extra_info["pcaps_carbon_by_count"] = {
        int(r.parameter): round(r.carbon_reduction_pct, 2) for r in pcaps
    }
    # PCAPS keeps a positive carbon reduction at every batch size.
    assert all(r.carbon_reduction_pct > 0 for r in pcaps)


def test_fig17_jobcount_sweep_prototype(benchmark):
    rows = run_once(
        benchmark, jobcount_sweep, job_counts=COUNTS,
        schedulers=("decima", "cap-k8s-default", "pcaps"),
        baseline="k8s-default", mode="kubernetes", num_executors=25,
    )
    emit("Figure 17 — job-count sweep (prototype mode)", _format(rows))
    pcaps = [r for r in rows if r.scheduler == "pcaps"]
    assert all(r.carbon_reduction_pct > -5.0 for r in pcaps)
    # Carbon is the most stable metric across batch sizes (paper A.2.1):
    carbon_spread = np.ptp([r.carbon_reduction_pct / 100 for r in pcaps])
    jct_spread = np.ptp([r.jct_ratio - 1 for r in pcaps])
    benchmark.extra_info["carbon_spread"] = round(float(carbon_spread), 3)
    benchmark.extra_info["jct_spread"] = round(float(jct_spread), 3)
