"""Figure 14: per-grid carbon reduction and ECT (simulator mode, vs FIFO).

Same analysis as Fig. 10 but in Spark-standalone mode against FIFO, where
Decima's carbon reduction is itself substantial (the hoarding-FIFO effect
of Appendix A.1.2).
"""

import numpy as np

from repro.experiments.figures import grid_comparison

from _report import emit, run_once


def test_fig14_grid_comparison_simulator(benchmark):
    rows = run_once(
        benchmark, grid_comparison,
        mode="standalone",
        schedulers=("decima", "cap-fifo", "pcaps"),
        baseline="fifo",
        num_executors=24,
        num_jobs=15,
    )
    lines = [
        f"{'grid':<7} {'cov':>6} {'scheduler':<10} {'carbon_red%':>12} {'ECT':>7}"
    ]
    for r in rows:
        lines.append(
            f"{r.grid:<7} {r.coeff_var:>6.3f} {r.scheduler:<10} "
            f"{r.carbon_reduction_pct:>11.1f}% {r.ect_ratio:>7.3f}"
        )
    emit("Figure 14 — per-grid behaviour (simulator mode)", lines)

    pcaps = [r for r in rows if r.scheduler == "pcaps"]
    decima = {r.grid: r for r in rows if r.scheduler == "decima"}
    covs = np.array([r.coeff_var for r in pcaps])
    reductions = np.array([r.carbon_reduction_pct for r in pcaps])
    correlation = float(np.corrcoef(covs, reductions)[0, 1])
    benchmark.extra_info["cov_reduction_correlation"] = round(correlation, 3)
    # PCAPS's reduction grows with grid variability...
    assert correlation > 0.2
    # ...and in the simulator Decima's own reduction is substantial (>5%)
    # because FIFO hoards executors (Appendix A.1.2).
    assert np.mean([r.carbon_reduction_pct for r in decima.values()]) > 5.0
