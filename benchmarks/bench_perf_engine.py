"""Engine throughput: the fast-path simulation engine regression gate.

Unlike the per-figure benches (which regenerate paper artifacts), this one
times the engine itself: complete trials across a scheduler × job-count
grid, reporting events/s, tasks/s, and Fig. 20-style select latency. The
measurements are written to ``BENCH_engine.json`` so successive PRs can
diff engine throughput, and compared against the recorded pre-refactor
wall times (commit 50c23a5) — the fast-path work (incremental frontier
tracking, cached scheduler state, O(1) executor-pool affinity, vectorized
ex-post carbon accounting, and the columnar ``FrontierArrays`` scheduler
path) must keep the 200-job Decima+PCAPS trial at least
``PCAPS_200_SPEEDUP_FLOOR`` times faster than that baseline.

Re-recording the gate after an intentional engine change: see
``docs/benchmarks.md`` ("Re-recording the perf gate").
"""

import json
from pathlib import Path

from repro.experiments.perf import (
    BATCHED_SPEEDUP_TARGET,
    PRE_REFACTOR_BASELINE_S,
    PerfScenario,
    build_scenarios,
    format_report,
    measure_batched_speedup,
    run_scenario,
    run_suite,
    write_report,
)
from repro.ioutil import atomic_write_text

from _report import emit, run_once

#: fifo-200 wall seconds on the post-refactor engine, measured on the same
#: container as PRE_REFACTOR_BASELINE_S — the machine-speed calibration
#: anchor for the speedup gate below.
POST_REFACTOR_FIFO_200_S = 0.114

#: The pcaps-200 speedup gate. The vectorized FrontierArrays scheduler
#: path measures ~9.3× vs the pre-refactor engine (best-of-3 on the
#: recording container); the floor is set a margin below that so machine
#: noise doesn't flake the gate while regressions to the previous ~6.3×
#: level still fail it.
PCAPS_200_SPEEDUP_FLOOR = 8.0

#: Noise control for the gate: wall times are best-of-N re-measurements of
#: the two scenarios entering the speedup ratio (the single-shot suite run
#: above is reported, but a one-shot ratio of two noisy timings flakes).
GATE_MEASUREMENT_ROUNDS = 3

#: The batched-replicate gate is a *no-regression floor*, not the roadmap's
#: ``BATCHED_SPEEDUP_TARGET`` (1.5×). At replicate width 8 the measured
#: paired ratio on CPython is ~1.0×: per-request Python glue — generator
#: suspension, per-replicate cache bookkeeping, the per-block sampling
#: tails that bit-identity forces to stay per-block — costs ~27µs of the
#: ~45µs request budget on both sides, while stacking only amortizes the
#: ~10µs of numpy dispatch (the ratio climbs with width: ~1.2× at 32
#: replicates; see docs/batching.md). The floor asserts batching never
#: costs more than measurement noise relative to sequential; the target
#: rides along in ``extra_info`` so the shortfall stays visible.
BATCHED_SPEEDUP_FLOOR = 0.85


def test_engine_throughput(benchmark):
    scenarios = build_scenarios(
        schedulers=("fifo", "decima", "pcaps"), job_counts=(50, 100, 200)
    )
    measurements = run_once(benchmark, run_suite, scenarios)
    emit("Engine throughput — BENCH_engine", format_report(measurements).splitlines())
    write_report(measurements, "BENCH_engine.json")

    benchmark.extra_info["events_per_s"] = {
        m.name: round(m.events_per_s) for m in measurements
    }
    benchmark.extra_info["speedup"] = {
        m.name: m.speedup_vs_pre_refactor
        for m in measurements
        if m.speedup_vs_pre_refactor is not None
    }

    # Every trial completes and produces work at a sane rate.
    for m in measurements:
        assert m.tasks > 0 and m.events > 0 and m.wall_s > 0
    # The headline acceptance gate: the 200-job Decima+PCAPS standalone
    # trial runs >= PCAPS_200_SPEEDUP_FLOOR times faster than the
    # pre-refactor engine. The recorded baseline is machine-specific, so
    # rescale it by this machine's speed first, using the fifo-200 trial
    # as the calibration probe (same engine, dominated by the same event
    # loop, barely touched by the PCAPS-specific costs): a machine that
    # runs fifo-200 2x slower than the recording machine is allowed 2x
    # the baseline wall time. Both timings entering the ratio are
    # best-of-N so one noisy sample can't flake the gate.
    fifo_wall = min(
        run_scenario(
            PerfScenario(name="fifo-200", scheduler="fifo", num_jobs=200)
        ).wall_s
        for _ in range(GATE_MEASUREMENT_ROUNDS)
    )
    pcaps_wall = min(
        run_scenario(
            PerfScenario(name="pcaps-200", scheduler="pcaps", num_jobs=200)
        ).wall_s
        for _ in range(GATE_MEASUREMENT_ROUNDS)
    )
    machine_scale = fifo_wall / POST_REFACTOR_FIFO_200_S
    scaled_baseline = PRE_REFACTOR_BASELINE_S["pcaps-200"] * machine_scale
    speedup = scaled_baseline / pcaps_wall
    benchmark.extra_info["gate"] = {
        "pcaps_200_speedup": round(speedup, 2),
        "floor": PCAPS_200_SPEEDUP_FLOOR,
    }
    assert speedup >= PCAPS_200_SPEEDUP_FLOOR


def test_batched_replicate_throughput(benchmark):
    """Batched multi-seed replicate gate: pcaps-200 × 8 seeds.

    The measurement is paired (sequential and batched alternate within
    each round, best-of-rounds per side) because this container's wall
    clock wanders by tens of percent between consecutive runs — unpaired
    one-shot timings of the two modes mostly measure machine weather.
    The enforced assertion is the no-regression floor; the unmet roadmap
    target is recorded alongside it (see BATCHED_SPEEDUP_FLOOR above and
    docs/batching.md).
    """
    paired = run_once(
        benchmark, measure_batched_speedup, rounds=GATE_MEASUREMENT_ROUNDS
    )
    emit(
        "Batched replicates — pcaps-200 x 8",
        [
            f"sequential best-of-{paired['rounds']}: "
            f"{paired['sequential_s']:.2f}s "
            f"({paired['sequential_trials_per_min']:.1f} trials/min)",
            f"batched    best-of-{paired['rounds']}: "
            f"{paired['batched_s']:.2f}s "
            f"({paired['batched_trials_per_min']:.1f} trials/min)",
            f"speedup {paired['speedup']:.2f}x "
            f"(floor {BATCHED_SPEEDUP_FLOOR}, "
            f"target {BATCHED_SPEEDUP_TARGET})",
        ],
    )
    # Fold the batched measurement into the BENCH_engine.json written by
    # test_engine_throughput, so one artifact carries both.
    path = Path("BENCH_engine.json")
    if path.exists():
        doc = json.loads(path.read_text())
        doc["batched_replicates"] = paired
        atomic_write_text(path, json.dumps(doc, indent=1) + "\n")
    benchmark.extra_info["gate"] = {
        "batched_speedup": paired["speedup"],
        "floor": BATCHED_SPEEDUP_FLOOR,
        "target": BATCHED_SPEEDUP_TARGET,
        "batched_trials_per_min": paired["batched_trials_per_min"],
        "sequential_trials_per_min": paired["sequential_trials_per_min"],
    }
    assert paired["speedup"] >= BATCHED_SPEEDUP_FLOOR
