"""Engine throughput: the fast-path simulation engine regression gate.

Unlike the per-figure benches (which regenerate paper artifacts), this one
times the engine itself: complete trials across a scheduler × job-count
grid, reporting events/s, tasks/s, and Fig. 20-style select latency. The
measurements are written to ``BENCH_engine.json`` so successive PRs can
diff engine throughput, and compared against the recorded pre-refactor
wall times (commit 50c23a5) — the fast-path work (incremental frontier
tracking, cached scheduler state, O(1) executor-pool affinity, vectorized
ex-post carbon accounting, and the columnar ``FrontierArrays`` scheduler
path) must keep the 200-job Decima+PCAPS trial at least
``PCAPS_200_SPEEDUP_FLOOR`` times faster than that baseline.

Re-recording the gate after an intentional engine change: see
``docs/benchmarks.md`` ("Re-recording the perf gate").
"""

from repro.experiments.perf import (
    PRE_REFACTOR_BASELINE_S,
    PerfScenario,
    build_scenarios,
    format_report,
    run_scenario,
    run_suite,
    write_report,
)

from _report import emit, run_once

#: fifo-200 wall seconds on the post-refactor engine, measured on the same
#: container as PRE_REFACTOR_BASELINE_S — the machine-speed calibration
#: anchor for the speedup gate below.
POST_REFACTOR_FIFO_200_S = 0.114

#: The pcaps-200 speedup gate. The vectorized FrontierArrays scheduler
#: path measures ~9.3× vs the pre-refactor engine (best-of-3 on the
#: recording container); the floor is set a margin below that so machine
#: noise doesn't flake the gate while regressions to the previous ~6.3×
#: level still fail it.
PCAPS_200_SPEEDUP_FLOOR = 8.0

#: Noise control for the gate: wall times are best-of-N re-measurements of
#: the two scenarios entering the speedup ratio (the single-shot suite run
#: above is reported, but a one-shot ratio of two noisy timings flakes).
GATE_MEASUREMENT_ROUNDS = 3


def test_engine_throughput(benchmark):
    scenarios = build_scenarios(
        schedulers=("fifo", "decima", "pcaps"), job_counts=(50, 100, 200)
    )
    measurements = run_once(benchmark, run_suite, scenarios)
    emit("Engine throughput — BENCH_engine", format_report(measurements).splitlines())
    write_report(measurements, "BENCH_engine.json")

    benchmark.extra_info["events_per_s"] = {
        m.name: round(m.events_per_s) for m in measurements
    }
    benchmark.extra_info["speedup"] = {
        m.name: m.speedup_vs_pre_refactor
        for m in measurements
        if m.speedup_vs_pre_refactor is not None
    }

    # Every trial completes and produces work at a sane rate.
    for m in measurements:
        assert m.tasks > 0 and m.events > 0 and m.wall_s > 0
    # The headline acceptance gate: the 200-job Decima+PCAPS standalone
    # trial runs >= PCAPS_200_SPEEDUP_FLOOR times faster than the
    # pre-refactor engine. The recorded baseline is machine-specific, so
    # rescale it by this machine's speed first, using the fifo-200 trial
    # as the calibration probe (same engine, dominated by the same event
    # loop, barely touched by the PCAPS-specific costs): a machine that
    # runs fifo-200 2x slower than the recording machine is allowed 2x
    # the baseline wall time. Both timings entering the ratio are
    # best-of-N so one noisy sample can't flake the gate.
    fifo_wall = min(
        run_scenario(
            PerfScenario(name="fifo-200", scheduler="fifo", num_jobs=200)
        ).wall_s
        for _ in range(GATE_MEASUREMENT_ROUNDS)
    )
    pcaps_wall = min(
        run_scenario(
            PerfScenario(name="pcaps-200", scheduler="pcaps", num_jobs=200)
        ).wall_s
        for _ in range(GATE_MEASUREMENT_ROUNDS)
    )
    machine_scale = fifo_wall / POST_REFACTOR_FIFO_200_S
    scaled_baseline = PRE_REFACTOR_BASELINE_S["pcaps-200"] * machine_scale
    speedup = scaled_baseline / pcaps_wall
    benchmark.extra_info["gate"] = {
        "pcaps_200_speedup": round(speedup, 2),
        "floor": PCAPS_200_SPEEDUP_FLOOR,
    }
    assert speedup >= PCAPS_200_SPEEDUP_FLOOR
