"""Engine throughput: the fast-path simulation engine regression gate.

Unlike the per-figure benches (which regenerate paper artifacts), this one
times the engine itself: complete trials across a scheduler × job-count
grid, reporting events/s, tasks/s, and Fig. 20-style select latency. The
measurements are written to ``BENCH_engine.json`` so successive PRs can
diff engine throughput, and compared against the recorded pre-refactor
wall times (commit 50c23a5) — the fast-path work (incremental frontier
tracking, cached scheduler state, O(1) executor-pool affinity, vectorized
ex-post carbon accounting) must keep the 200-job Decima+PCAPS trial at
least 5× faster than that baseline.
"""

from repro.experiments.perf import (
    PRE_REFACTOR_BASELINE_S,
    build_scenarios,
    format_report,
    run_suite,
    write_report,
)

from _report import emit, run_once

#: fifo-200 wall seconds on the post-refactor engine, measured on the same
#: container as PRE_REFACTOR_BASELINE_S — the machine-speed calibration
#: anchor for the speedup gate below.
POST_REFACTOR_FIFO_200_S = 0.114


def test_engine_throughput(benchmark):
    scenarios = build_scenarios(
        schedulers=("fifo", "decima", "pcaps"), job_counts=(50, 100, 200)
    )
    measurements = run_once(benchmark, run_suite, scenarios)
    emit("Engine throughput — BENCH_engine", format_report(measurements).splitlines())
    write_report(measurements, "BENCH_engine.json")

    by_name = {m.name: m for m in measurements}
    benchmark.extra_info["events_per_s"] = {
        m.name: round(m.events_per_s) for m in measurements
    }
    benchmark.extra_info["speedup"] = {
        m.name: m.speedup_vs_pre_refactor
        for m in measurements
        if m.speedup_vs_pre_refactor is not None
    }

    # Every trial completes and produces work at a sane rate.
    for m in measurements:
        assert m.tasks > 0 and m.events > 0 and m.wall_s > 0
    # The headline acceptance gate: the 200-job Decima+PCAPS standalone
    # trial runs >= 5x faster than the pre-refactor engine. The recorded
    # baseline is machine-specific, so rescale it by this machine's speed
    # first, using the fifo-200 trial as the calibration probe (same
    # engine, dominated by the same event loop, barely touched by the
    # PCAPS-specific costs): a machine that runs fifo-200 2x slower than
    # the recording machine is allowed 2x the baseline wall time.
    machine_scale = by_name["fifo-200"].wall_s / POST_REFACTOR_FIFO_200_S
    pcaps = by_name["pcaps-200"]
    scaled_baseline = PRE_REFACTOR_BASELINE_S["pcaps-200"] * machine_scale
    assert scaled_baseline / pcaps.wall_s >= 5.0
