"""Figures 18/19: impact of the Poisson interarrival time.

Smaller interarrival = heavier cluster load. The paper finds intelligent
schedulers (PCAPS, Decima) gain the most over FIFO under heavy load, where
FIFO's queue build-up is worst.
"""

from repro.experiments.figures import interarrival_sweep

from _report import emit, run_once

GAPS = (10.0, 20.0, 45.0, 90.0)


def _format(rows):
    lines = [
        f"{'gap_s':>6} {'scheduler':<18} {'carbon_red%':>12} {'ECT':>7} {'JCT':>7}"
    ]
    for r in rows:
        lines.append(
            f"{r.parameter:>6.0f} {r.scheduler:<18} "
            f"{r.carbon_reduction_pct:>11.1f}% {r.ect_ratio:>7.3f} "
            f"{r.jct_ratio:>7.3f}"
        )
    return lines


def test_fig18_interarrival_sweep_simulator(benchmark):
    rows = run_once(
        benchmark, interarrival_sweep, interarrivals=GAPS,
        schedulers=("decima", "cap-fifo", "pcaps"), baseline="fifo",
        mode="standalone", num_executors=25, num_jobs=20,
    )
    emit("Figure 18 — interarrival sweep (simulator)", _format(rows))
    decima = {r.parameter: r for r in rows if r.scheduler == "decima"}
    benchmark.extra_info["decima_jct_by_gap"] = {
        g: round(decima[g].jct_ratio, 3) for g in GAPS
    }
    # Decima's JCT advantage over FIFO is largest under heavy load.
    assert decima[GAPS[0]].jct_ratio <= decima[GAPS[-1]].jct_ratio + 0.05


def test_fig19_interarrival_sweep_prototype(benchmark):
    rows = run_once(
        benchmark, interarrival_sweep, interarrivals=GAPS,
        schedulers=("decima", "cap-k8s-default", "pcaps"),
        baseline="k8s-default", mode="kubernetes", num_executors=25,
        num_jobs=20,
    )
    emit("Figure 19 — interarrival sweep (prototype mode)", _format(rows))
    pcaps = [r for r in rows if r.scheduler == "pcaps"]
    assert all(r.carbon_reduction_pct > -5.0 for r in pcaps)
