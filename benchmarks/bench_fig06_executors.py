"""Figure 6: executor usage over time — Decima vs PCAPS vs CAP-FIFO.

A small cluster (5 executors) processes 20 TPC-H jobs against the DE grid.
The figure's content: PCAPS idles *specific* executors during the
high-carbon period while bottlenecks keep running; CAP-FIFO's quota cuts
straight vertical gaps across all executors; Decima never idles.
"""

import numpy as np

from repro.experiments.figures import fig6_executor_usage
from repro.simulator.trace import busy_executor_series

from _report import emit, run_once


def _render(grid: np.ndarray, stride: int) -> list[str]:
    rows = []
    for executor in range(grid.shape[0]):
        cells = grid[executor, ::stride]
        rows.append(
            "exec%d |%s|"
            % (
                executor,
                "".join("." if c < 0 else chr(ord("a") + c % 26) for c in cells),
            )
        )
    return rows


def test_fig6_executor_usage(benchmark):
    data = run_once(
        benchmark, fig6_executor_usage, num_executors=5, num_jobs=20,
        grid="DE", resolution=10.0,
    )
    width = max(g.shape[1] for g in data.timelines.values())
    stride = max(1, width // 100)
    lines = []
    idle_fractions = {}
    for name, grid in data.timelines.items():
        result = data.results[name]
        horizon = result.ect
        _, busy = busy_executor_series(result.trace, t_end=horizon, resolution=10.0)
        idle_fractions[name] = float(1.0 - busy.mean() / grid.shape[0])
        lines.append(f"--- {name} (ECT {horizon:.0f}s, carbon {result.carbon_footprint:.2e})")
        lines.extend(_render(grid, stride))
    emit("Figure 6 — executor timelines (letters = jobs, dots = idle)", lines)
    benchmark.extra_info["idle_fractions"] = {
        k: round(v, 3) for k, v in idle_fractions.items()
    }
    # PCAPS idles more than Decima (carbon-aware deferral) and saves carbon.
    assert idle_fractions["pcaps"] >= idle_fractions["decima"] - 0.02
    assert (
        data.results["pcaps"].carbon_footprint
        < data.results["decima"].carbon_footprint
    )
