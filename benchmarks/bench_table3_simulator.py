"""Table 3: simulator top-line results (standalone mode, 6 grids).

All eight schedulers normalized to Spark-standalone FIFO, averaged over the
six grids. Paper: PCAPS -39.7% at ECT 1.045 / JCT 1.436; CAP-FIFO -22.7%;
Decima -21.5% at JCT 0.654; GreenHadoop -8.2%.
"""

from repro.experiments.tables import (
    PAPER_TABLE3,
    format_metric_table,
    table3_rows,
)

from _report import emit, run_once


def test_table3_simulator_topline(benchmark):
    rows = run_once(benchmark, table3_rows)
    emit(
        "Table 3 — simulator (standalone mode), normalized to FIFO",
        [format_metric_table(rows, PAPER_TABLE3)],
    )
    for name, m in rows.items():
        benchmark.extra_info[name] = {
            "carbon_red_pct": round(m.carbon_reduction_pct, 2),
            "ect": round(m.ect_ratio, 3),
            "jct": round(m.jct_ratio, 3),
        }
    # Shape assertions from the paper's Table 3:
    assert rows["decima"].jct_ratio < 1.0  # learned scheduler halves JCT
    assert rows["weighted-fair"].jct_ratio < 1.0
    assert rows["greenhadoop"].carbon_reduction_pct > 0.0
    assert rows["pcaps"].carbon_reduction_pct > 20.0
    assert (
        rows["pcaps"].carbon_reduction_pct
        >= rows["cap-fifo"].carbon_reduction_pct
    )
    assert rows["cap-decima"].carbon_reduction_pct > rows[
        "decima"
    ].carbon_reduction_pct
