"""Geo federation figure: single-region PCAPS vs. federated routing.

Runs the six-grid federation scenario (one PCAPS cluster per Table-1 grid)
under every routing policy on the identical workload, next to the
single-region counterfactuals: the whole batch on one PCAPS cluster per
grid holding the *total* federated executor count, so the comparison is
capacity-matched. The figure is the subsystem's headline claim: spatial
shifting on top of the paper's temporal shifting buys a further carbon
cut, even after paying for inter-region data transfer.

Dual-use:

- ``python benchmarks/bench_geo_federation.py [--smoke]`` runs standalone
  and writes ``BENCH_geo.json`` (CI uploads the smoke variant);
- ``pytest benchmarks/bench_geo_federation.py --benchmark-only`` times the
  full scenario under pytest-benchmark like the other benches.

The carbon-forecast < round-robin total-carbon ordering is asserted in
both modes — it is the acceptance gate for the federation subsystem.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro import __version__
from repro.experiments.federation import (
    run_routing_matchup,
    scaled_single_region,
)
from repro.geo import FederationConfig, run_federation
from repro.geo.routing import ROUTING_POLICY_NAMES
from repro.workloads.batch import WorkloadSpec


def scenario(smoke: bool) -> FederationConfig:
    if smoke:
        workload = WorkloadSpec(
            family="tpch", num_jobs=12, mean_interarrival=15.0,
            tpch_scales=(2,),
        )
        executors = 6
    else:
        workload = WorkloadSpec(
            family="tpch", num_jobs=48, mean_interarrival=20.0,
            tpch_scales=(2, 10),
        )
        executors = 12
    return FederationConfig.six_grid(
        scheduler="pcaps", num_executors=executors, workload=workload, seed=1
    )


def run_benchmark(smoke: bool) -> dict:
    config = scenario(smoke)
    federated = run_routing_matchup(config, ROUTING_POLICY_NAMES)
    # Capacity-matched counterfactuals: the whole batch on one cluster per
    # grid holding the total federated executor count (no transfer cost).
    single = {
        name: run_federation(scaled_single_region(config, name)).total_carbon_g
        for name in config.region_names()
    }
    doc = {
        "benchmark": "geo-federation",
        "version": __version__,
        "mode": "smoke" if smoke else "full",
        "num_jobs": config.workload.num_jobs,
        "executors_per_region": config.regions[0].num_executors,
        "federated": {
            name: {
                "total_carbon_g": result.total_carbon_g,
                "compute_carbon_g": result.compute_carbon_g,
                "transfer_carbon_g": result.transfer_carbon_g,
                "ect": result.ect,
                "avg_jct": result.avg_jct,
                "avg_stretch": result.avg_stretch,
                "moved_jobs": result.moved_jobs(),
                "jobs_per_region": result.jobs_per_region(),
            }
            for name, result in federated.items()
        },
        "single_region_carbon_g": single,
        "single_region_capacity_matched": True,
    }
    return doc


def format_figure(doc: dict) -> list[str]:
    """ASCII bar chart of total carbon per deployment option."""
    rows: list[tuple[str, float]] = [
        (f"single:{name}", grams)
        for name, grams in sorted(doc["single_region_carbon_g"].items())
    ] + [
        (f"fed:{name}", metrics["total_carbon_g"])
        for name, metrics in doc["federated"].items()
    ]
    top = max(grams for _, grams in rows)
    lines = [f"total carbon (g) — {doc['num_jobs']} jobs, "
             f"{doc['executors_per_region']} executors/region"]
    for name, grams in sorted(rows, key=lambda r: r[1]):
        bar = "#" * max(1, round(40 * grams / top))
        lines.append(f"  {name:<20} {grams:>9.1f} {bar}")
    rr = doc["federated"]["round-robin"]["total_carbon_g"]
    cf = doc["federated"]["carbon-forecast"]["total_carbon_g"]
    lines.append(
        f"  carbon-forecast vs round-robin: "
        f"{100.0 * (1.0 - cf / rr):+.1f}% carbon"
    )
    return lines


def check_acceptance(doc: dict) -> None:
    rr = doc["federated"]["round-robin"]["total_carbon_g"]
    cf = doc["federated"]["carbon-forecast"]["total_carbon_g"]
    assert cf < rr, (
        f"carbon-forecast ({cf:.1f} g) must beat round-robin ({rr:.1f} g)"
    )


def write_report(doc: dict, output: str) -> None:
    Path(output).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale CI scenario instead of the full figure",
    )
    parser.add_argument("--output", default="BENCH_geo.json")
    args = parser.parse_args(argv)
    doc = run_benchmark(smoke=args.smoke)
    for line in format_figure(doc):
        print(line)
    check_acceptance(doc)
    write_report(doc, args.output)
    print(f"wrote {args.output}")
    return 0


def test_geo_federation(benchmark):
    """pytest-benchmark entry point (full scenario, timed once)."""
    from _report import emit, run_once

    doc = run_once(benchmark, run_benchmark, False)
    emit("Geo federation — BENCH_geo", format_figure(doc))
    check_acceptance(doc)
    write_report(doc, "BENCH_geo.json")
    benchmark.extra_info["total_carbon_g"] = {
        name: round(m["total_carbon_g"], 1)
        for name, m in doc["federated"].items()
    }


if __name__ == "__main__":
    sys.exit(main())
