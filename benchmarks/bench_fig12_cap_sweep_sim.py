"""Figure 12: CAP-FIFO B sweep in the simulator (standalone mode).

Compared with Fig. 11, CAP-FIFO sacrifices more ECT for the same or lower
carbon savings, and the completion-time hit starts at milder settings.
"""

from repro.experiments.figures import cap_b_sweep
from repro.experiments.runner import ExperimentConfig
from repro.workloads.batch import WorkloadSpec

from _report import emit, run_once

QUOTAS = (4, 8, 14, 22, 32)  # of K=40


def _config():
    return ExperimentConfig(
        grid="DE",
        mode="standalone",
        num_executors=40,
        workload=WorkloadSpec(family="tpch", num_jobs=25, mean_interarrival=45.0),
        seed=5,
    )


def test_fig12_cap_b_sweep_simulator(benchmark):
    points = run_once(
        benchmark, cap_b_sweep, quotas=QUOTAS, underlying="fifo",
        config=_config(),
    )
    lines = [f"{'B':>5} {'carbon_red%':>12} {'ECT':>7} {'JCT':>7}"]
    for p in points:
        lines.append(
            f"{p.parameter:>5.0f} {p.carbon_reduction_pct:>11.1f}% "
            f"{p.ect_ratio:>7.3f} {p.jct_ratio:>7.3f}"
        )
    emit("Figure 12 — CAP-FIFO B sweep (simulator, DE)", lines)
    benchmark.extra_info["points"] = [
        (p.parameter, round(p.carbon_reduction_pct, 2), round(p.ect_ratio, 3))
        for p in points
    ]
    assert points[0].carbon_reduction_pct > points[-1].carbon_reduction_pct
    # The most aggressive setting pays measurable ECT.
    assert points[0].ect_ratio >= points[-1].ect_ratio - 0.02
