"""Streaming service-mode benchmark: jobs/s and the flat-memory ceiling.

A pinned steady-state scenario — fifo on 16 executors, TPC-H scale-2 jobs
arriving Poisson(30s), utilization ~0.6 — is run at two stream lengths an
order of magnitude apart. Each length runs in its own subprocess so
``ru_maxrss`` measures that case alone, and the acceptance gate is the
subsystem's headline claim: peak RSS stays flat as the job count grows
10x, because the :class:`~repro.simulator.streaming.StreamingAggregator`
folds records in O(1) memory and :meth:`retire_finished` garbage-collects
jobs in flight.

- smoke mode compares 10^3 vs 10^4 jobs (seconds-scale, run by CI);
- full mode compares 10^4 vs 10^5 jobs, so the large case demonstrates
  >= 10^5 jobs through one stream.

Dual-use:

- ``python benchmarks/bench_stream.py [--smoke]`` runs standalone and
  writes ``BENCH_stream.json`` (CI uploads the smoke variant);
- ``pytest benchmarks/bench_stream.py --benchmark-only`` times the smoke
  scenario under pytest-benchmark like the other benches.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro import __version__
from repro.experiments.runner import ExperimentConfig
from repro.stream import ServiceConfig, run_service
from repro.workloads.stream import StreamSpec

#: Peak-RSS growth allowed between the small and the 10x-larger run. A
#: truly O(jobs) path would blow straight through this; the streaming
#: path's growth is allocator noise.
RSS_CEILING = 1.35

SMOKE_CASES = (1_000, 10_000)
FULL_CASES = (10_000, 100_000)


def scenario(max_jobs: int) -> ServiceConfig:
    """The pinned steady-state scenario at a given stream length."""
    return ServiceConfig(
        experiment=ExperimentConfig(
            scheduler="fifo", num_executors=16, seed=0
        ),
        stream=StreamSpec(
            family="tpch",
            mean_interarrival=30.0,
            tpch_scales=(2,),
            seed=0,
            max_jobs=max_jobs,
        ),
        window_s=3600.0,
        epoch_events=8192,
    )


def run_case(max_jobs: int) -> dict:
    """Run one stream length in-process and report throughput + peak RSS.

    Meant to run in a fresh subprocess per case: ``ru_maxrss`` is a
    process-lifetime high-water mark, so measuring two cases in one
    process would let the first contaminate the second.
    """
    start = time.perf_counter()
    report = run_service(scenario(max_jobs))
    wall_s = time.perf_counter() - start
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "jobs": report.jobs_completed,
        "events": report.events_processed,
        "epochs": report.epochs,
        "windows": len(report.windows),
        "wall_s": wall_s,
        "jobs_per_s": report.jobs_completed / wall_s if wall_s else 0.0,
        "peak_rss_kb": peak_rss_kb,
        "utilization": report.summary["utilization"],
        "avg_jct": report.summary["avg_jct"],
        "fingerprint": report.fingerprint,
    }


def run_case_subprocess(max_jobs: int) -> dict:
    """Run one case in its own interpreter for an isolated RSS reading."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, __file__, "--worker", str(max_jobs)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout.splitlines()[-1])


def run_benchmark(smoke: bool) -> dict:
    small_jobs, large_jobs = SMOKE_CASES if smoke else FULL_CASES
    small = run_case_subprocess(small_jobs)
    large = run_case_subprocess(large_jobs)
    return {
        "benchmark": "stream-steady",
        "version": __version__,
        "mode": "smoke" if smoke else "full",
        "scheduler": "fifo",
        "executors": 16,
        "mean_interarrival_s": 30.0,
        "rss_ceiling": RSS_CEILING,
        "cases": {str(small_jobs): small, str(large_jobs): large},
        "small_jobs": small_jobs,
        "large_jobs": large_jobs,
        "steady_jobs_per_s": large["jobs_per_s"],
        "rss_ratio": large["peak_rss_kb"] / small["peak_rss_kb"],
    }


def format_figure(doc: dict) -> list[str]:
    lines = [
        f"streaming steady state — {doc['scheduler']}, "
        f"{doc['executors']} executors, "
        f"Poisson({doc['mean_interarrival_s']:.0f}s) arrivals"
    ]
    lines.append(
        f"  {'jobs':>8} {'events':>9} {'wall_s':>8} {'jobs/s':>8} "
        f"{'rss_MB':>8} {'util':>6}"
    )
    for jobs in (doc["small_jobs"], doc["large_jobs"]):
        c = doc["cases"][str(jobs)]
        lines.append(
            f"  {c['jobs']:>8} {c['events']:>9} {c['wall_s']:>8.1f} "
            f"{c['jobs_per_s']:>8.0f} {c['peak_rss_kb'] / 1024:>8.1f} "
            f"{c['utilization']:>6.3f}"
        )
    lines.append(
        f"  peak-RSS ratio at 10x jobs: {doc['rss_ratio']:.3f} "
        f"(ceiling {doc['rss_ceiling']})"
    )
    return lines


def check_acceptance(doc: dict) -> None:
    assert doc["rss_ratio"] <= doc["rss_ceiling"], (
        f"peak RSS must stay flat as the stream grows 10x: "
        f"ratio {doc['rss_ratio']:.3f} exceeds ceiling {doc['rss_ceiling']}"
    )
    large = doc["cases"][str(doc["large_jobs"])]
    assert large["jobs"] == doc["large_jobs"], (
        f"large case must complete every job "
        f"({large['jobs']} != {doc['large_jobs']})"
    )
    if doc["mode"] == "full":
        assert doc["large_jobs"] >= 100_000, (
            "full mode must push >= 1e5 jobs through one stream"
        )
    # A saturated scenario would grow its active set and invalidate the
    # memory claim; steady state means the queue stays drained.
    assert large["utilization"] < 0.95, (
        f"scenario saturated (utilization {large['utilization']:.3f}); "
        f"the memory gate is only meaningful at steady state"
    )


def write_report(doc: dict, output: str) -> None:
    Path(output).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="10^3 vs 10^4 jobs (seconds-scale CI gate) "
             "instead of 10^4 vs 10^5",
    )
    parser.add_argument(
        "--worker", type=int, metavar="JOBS",
        help="internal: run one case in this process and print JSON",
    )
    parser.add_argument("--output", default="BENCH_stream.json")
    args = parser.parse_args(argv)
    if args.worker is not None:
        print(json.dumps(run_case(args.worker)))
        return 0
    doc = run_benchmark(smoke=args.smoke)
    for line in format_figure(doc):
        print(line)
    check_acceptance(doc)
    write_report(doc, args.output)
    print(f"wrote {args.output}")
    return 0


def test_stream_steady_state(benchmark):
    """pytest-benchmark entry point (smoke scale, timed once)."""
    from _report import emit, run_once

    doc = run_once(benchmark, run_benchmark, True)
    emit("Streaming steady state — BENCH_stream", format_figure(doc))
    check_acceptance(doc)
    write_report(doc, "BENCH_stream.json")
    benchmark.extra_info["steady_jobs_per_s"] = doc["steady_jobs_per_s"]
    benchmark.extra_info["rss_ratio"] = doc["rss_ratio"]


if __name__ == "__main__":
    sys.exit(main())
