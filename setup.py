"""Shim for ``pip install -e .``; all metadata lives in setup.cfg."""

from setuptools import setup

setup()
